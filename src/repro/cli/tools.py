"""Tool subcommands: network calibration, dynamic efficiency, graph dump."""

from __future__ import annotations

import argparse

from repro.analysis.tables import ascii_bar_chart, ascii_table
from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel
from repro.cli.common import parse_kill_events
from repro.errors import ConfigurationError
from repro.netmodel.calibration import calibrate
from repro.netmodel.packet import PacketNetwork
from repro.netmodel.star import EqualShareStarNetwork
from repro.sim.efficiency import dynamic_efficiency, mean_efficiency
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster


# --------------------------------------------------------------------------
# calibrate
# --------------------------------------------------------------------------


def add_calibrate_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``calibrate`` subcommand."""
    p = sub.add_parser(
        "calibrate",
        help="measure latency/bandwidth of a network model",
        description=(
            "Run the standard characterization experiment (t = l + s/b fit "
            "over single transfers) against a network model — the per-machine "
            "measurement the paper requires before simulating."
        ),
    )
    p.add_argument(
        "--target",
        choices=("testbed", "star"),
        default="testbed",
        help="testbed: the packet-level ground truth; star: the paper model",
    )
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--seed", type=int, default=99)
    p.set_defaults(func=cmd_calibrate)


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Fit (latency, bandwidth) of the chosen network model and print them."""
    if args.target == "testbed":
        cluster = VirtualCluster(num_nodes=args.nodes, seed=args.seed)
        factory = lambda kernel: PacketNetwork(  # noqa: E731
            kernel, cluster.network, cluster.packet_params, seed=args.seed
        )
    else:
        factory = lambda kernel: EqualShareStarNetwork(  # noqa: E731
            kernel, PAPER_CLUSTER.network
        )
    result = calibrate(factory)
    rows = [
        (size, f"{time * 1e3:.3f} ms")
        for size, time in zip(result.sizes, result.times)
    ]
    print(ascii_table(("size [B]", "transfer time"), rows,
                      title=f"calibration probes ({args.target})"))
    print(f"fitted latency   : {result.latency * 1e6:.1f} us")
    print(f"fitted bandwidth : {result.bandwidth / 1e6:.2f} MB/s")
    print(f"fit residual rms : {result.residual_rms * 1e6:.1f} us")
    return 0


# --------------------------------------------------------------------------
# cache
# --------------------------------------------------------------------------


def add_cache_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``cache`` subcommand."""
    p = sub.add_parser(
        "cache",
        help="manage the on-disk calibration and kernel-benchmark caches",
        description=(
            "Platform calibrations and kernel-benchmark sample tables are "
            "persisted under a user-cache directory (REPRO_CACHE_DIR, else "
            "~/.cache/repro-schaeli06) so repeated invocations skip the "
            "characterization experiment and the direct-execution warm-up."
        ),
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    clear_p = cache_sub.add_parser(
        "clear", help="delete every cached calibration and benchmark table"
    )
    clear_p.set_defaults(func=cmd_cache_clear)
    info_p = cache_sub.add_parser(
        "info", help="show the cache location, entries and on-disk sizes"
    )
    info_p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (families, entries, byte totals)",
    )
    info_p.set_defaults(func=cmd_cache_info)


def cmd_cache_clear(args: argparse.Namespace) -> int:
    """Delete every cached calibration and kernel-benchmark entry."""
    from repro.analysis import benchcache, calibcache

    removed = calibcache.clear()
    removed_bench = benchcache.clear()
    print(
        f"removed {removed} cached calibration(s) and {removed_bench} "
        f"kernel benchmark table(s) from {calibcache.cache_dir()}"
    )
    return 0


def _cache_family(paths) -> dict:
    """Entry names and byte sizes of one cache family.

    Sizes of entries that vanish mid-listing (a concurrent ``clear``)
    count as 0; the cache contract makes concurrent access harmless.
    """
    entries = []
    total = 0
    for path in paths:
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        entries.append({"name": path.name, "bytes": size})
        total += size
    return {"entries": entries, "count": len(entries), "bytes": total}


def cmd_cache_info(args: argparse.Namespace) -> int:
    """Show both cache families' entries and on-disk sizes."""
    import json

    from repro.analysis import benchcache, calibcache

    families = {
        "calibrations": _cache_family(calibcache.entries()),
        "kernel_benches": _cache_family(benchcache.entries()),
    }
    if args.json:
        payload = {"directory": str(calibcache.cache_dir()), **families}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"cache directory : {calibcache.cache_dir()}")
    print(
        f"calibrations    : {families['calibrations']['count']} "
        f"({families['calibrations']['bytes']} B)"
    )
    print(
        f"kernel benches  : {families['kernel_benches']['count']} "
        f"({families['kernel_benches']['bytes']} B)"
    )
    for family in families.values():
        for entry in family["entries"]:
            print(f"  {entry['name']}  ({entry['bytes']} B)")
    return 0


# --------------------------------------------------------------------------
# trend
# --------------------------------------------------------------------------


def add_trend_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``trend`` subcommand."""
    p = sub.add_parser(
        "trend",
        help="render benchmark-history JSON into a static trend page",
        description=(
            "Read a directory of nightly benchmark artifacts "
            "(pytest-benchmark JSON files, one subdirectory or file per "
            "run) and write trend.md plus a self-contained trend.html "
            "with per-bench sparklines."
        ),
    )
    p.add_argument(
        "history", help="directory of bench-result JSON files (one run per "
        "subdirectory or per top-level file)",
    )
    p.add_argument(
        "--out", default="bench-trend",
        help="output directory for trend.md / trend.html",
    )
    p.add_argument(
        "--alert-threshold", type=float, default=None, metavar="PCT",
        help="fail (exit 3) when any bench's first→last median delta "
        "exceeds PCT percent; regressions are printed as GitHub "
        "::error annotations",
    )
    p.set_defaults(func=cmd_trend)


def cmd_trend(args: argparse.Namespace) -> int:
    """Render the trend pages; optionally gate on first→last regressions."""
    from pathlib import Path

    from repro.analysis.trend import load_history, regressions, write_trend_pages

    history = load_history(Path(args.history))
    labels, series = history
    md_path, html_path = write_trend_pages(
        Path(args.history), Path(args.out), history=history
    )
    print(f"{len(series)} benches over {len(labels)} run(s)")
    print(f"wrote {md_path}")
    print(f"wrote {html_path}")
    if args.alert_threshold is not None:
        flagged = regressions(labels, series, args.alert_threshold / 100.0)
        for name, delta in flagged:
            # GitHub Actions annotation syntax; plain noise elsewhere.
            print(
                f"::error title=bench regression::{name} is {delta:+.1%} "
                f"vs the first run (threshold {args.alert_threshold:.0f}%)"
            )
        if flagged:
            print(
                f"{len(flagged)} bench(es) regressed beyond "
                f"{args.alert_threshold:.0f}%"
            )
            return 3
        print(f"no regressions beyond {args.alert_threshold:.0f}%")
    return 0


# --------------------------------------------------------------------------
# efficiency
# --------------------------------------------------------------------------


def add_efficiency_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``efficiency`` subcommand."""
    p = sub.add_parser(
        "efficiency",
        help="per-iteration dynamic efficiency of an LU run (Fig. 11)",
        description=(
            "Simulate an LU configuration and print the paper's dynamic "
            "efficiency — utilization per iteration — optionally under a "
            "dynamic thread-removal schedule."
        ),
    )
    p.add_argument("--n", type=int, default=2592)
    p.add_argument("--r", type=int, default=324)
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument(
        "--kill", action="append", metavar="T,..@K", default=None,
        help="remove worker threads T,.. after iteration K (repeatable)",
    )
    p.set_defaults(func=cmd_efficiency)


def cmd_efficiency(args: argparse.Namespace) -> int:
    """Simulate an LU run and print its per-iteration dynamic efficiency."""
    cfg = LUConfig(
        n=args.n,
        r=args.r,
        num_threads=args.threads,
        num_nodes=args.nodes,
        schedule=parse_kill_events(args.kill),
        mode=SimulationMode.PDEXEC_NOALLOC,
    )
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(LUCostModel(PAPER_CLUSTER.machine, cfg.r)),
    )
    result = sim.run(LUApplication(cfg))
    series = dynamic_efficiency(result.run)
    rows = [
        (
            p.label,
            f"{p.duration:.2f} s",
            f"{p.mean_nodes:.2f}",
            f"{p.efficiency:.1%}",
        )
        for p in series
    ]
    print(ascii_table(
        ("iteration", "duration", "mean nodes", "efficiency"),
        rows,
        title=f"dynamic efficiency, schedule={cfg.schedule.name}",
    ))
    print()
    print(ascii_bar_chart(
        [p.label for p in series],
        [p.efficiency for p in series],
        fmt="{:.1%}",
        title="efficiency per iteration",
    ))
    print(f"\npredicted running time : {result.predicted_time:.2f} s")
    print(f"whole-run efficiency   : {mean_efficiency(result.run):.1%}")
    return 0


# --------------------------------------------------------------------------
# sweep
# --------------------------------------------------------------------------


def add_sweep_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``sweep`` subcommand."""
    p = sub.add_parser(
        "sweep",
        help="measured-vs-predicted LU validation sweep (parallelizable)",
        description=(
            "Run a measured/predicted pair for every (block size, node "
            "count) combination; --jobs fans the independent cases out "
            "over a process pool with a shared calibration cache."
        ),
    )
    p.add_argument("--n", type=int, default=2592, help="matrix size")
    p.add_argument(
        "--r", default="216,324", metavar="R1,R2,..",
        help="comma-separated decomposition block sizes (must divide n)",
    )
    p.add_argument(
        "--nodes", default="4", metavar="N1,N2,..",
        help="comma-separated cluster sizes",
    )
    p.add_argument("--seed", type=int, default=1, help="measurement seed")
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (0 = one per CPU, 1 = serial)",
    )
    p.set_defaults(func=cmd_sweep)


def _parse_int_list(text: str, option: str) -> list[int]:
    try:
        values = [int(v) for v in text.split(",") if v.strip()]
    except ValueError as exc:
        raise ConfigurationError(f"{option} expects comma-separated integers: {exc}")
    if not values:
        raise ConfigurationError(f"{option} needs at least one value")
    return values


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run the LU validation sweep and print the prediction-error study.

    Every case is a *pair* of declarative scenarios — a ``testbed``
    measurement and a calibrated ``sim`` prediction of the same LU
    configuration — executed through
    :meth:`~repro.analysis.parallel.ParallelSweepRunner.run_records`, so
    the CLI sweep and any spec-file sweep speak the same format.
    """
    from repro.analysis.prediction import PredictionStudy
    from repro.analysis.sweep import sweep_specs
    from repro.scenario import (
        AppSection,
        EngineSection,
        PlatformSection,
        ScenarioSpec,
    )

    block_sizes = _parse_int_list(args.r, "--r")
    node_counts = _parse_int_list(args.nodes, "--nodes")
    labels = []
    specs = []
    for nodes in node_counts:
        for r in block_sizes:
            label = f"r={r},nodes={nodes}"
            labels.append(label)
            app = AppSection(
                "lu",
                {
                    "n": args.n,
                    "r": r,
                    "num_threads": max(nodes, 2),
                    "num_nodes": nodes,
                },
            )
            specs.append(ScenarioSpec(
                name=label,
                app=app,
                engine=EngineSection("testbed", mode="noalloc", seed=args.seed),
            ))
            specs.append(ScenarioSpec(
                name=label,
                app=app,
                engine=EngineSection("sim", mode="noalloc", seed=args.seed),
                platform=PlatformSection(calibrate=True),
            ))
    records = sweep_specs(specs, jobs=args.jobs)
    study = PredictionStudy()
    rows = []
    for label, measured_rec, predicted_rec in zip(
        labels, records[0::2], records[1::2]
    ):
        measured = measured_rec.makespan
        predicted = predicted_rec.makespan
        study.add(label, measured, predicted)
        rows.append(
            (
                label,
                f"{measured:.2f} s",
                f"{predicted:.2f} s",
                f"{(predicted - measured) / measured:+.1%}",
            )
        )
    print(ascii_table(
        ("case", "measured", "predicted", "error"),
        rows,
        title=f"LU validation sweep, n={args.n}, jobs={args.jobs or 'auto'}",
    ))
    summary = study.summary()
    print(f"\ncases                   : {summary['count']:.0f}")
    print(f"within 6% of measurement: {summary['within_6pct']:.0%}")
    print(f"max abs prediction error: {summary['max_abs']:.1%}")
    return 0


# --------------------------------------------------------------------------
# graph
# --------------------------------------------------------------------------


def add_graph_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``graph`` subcommand."""
    p = sub.add_parser(
        "graph",
        help="dump an application's flow-graph structure",
        description="Print the vertices and edges of an application's flow graph.",
    )
    p.add_argument(
        "app",
        choices=("lu", "lu-pipelined", "stencil", "stencil-barrier", "sort", "matmul"),
    )
    p.set_defaults(func=cmd_graph)


def cmd_graph(args: argparse.Namespace) -> int:
    """Print the vertices and edges of the chosen application's flow graph."""
    from repro.apps.matmul import MatmulApplication, MatmulConfig
    from repro.apps.sort import SampleSortApplication, SampleSortConfig
    from repro.apps.stencil import StencilApplication, StencilConfig

    noalloc = SimulationMode.PDEXEC_NOALLOC
    builders = {
        "lu": lambda: LUApplication(LUConfig(n=648, r=216, mode=noalloc)),
        "lu-pipelined": lambda: LUApplication(
            LUConfig(n=648, r=216, pipelined=True, mode=noalloc)
        ),
        "stencil": lambda: StencilApplication(
            StencilConfig(n=16, stripes=2, iterations=2, num_threads=2,
                          num_nodes=2, mode=noalloc)
        ),
        "stencil-barrier": lambda: StencilApplication(
            StencilConfig(n=16, stripes=2, iterations=2, num_threads=2,
                          num_nodes=2, barrier=True, mode=noalloc)
        ),
        "sort": lambda: SampleSortApplication(
            SampleSortConfig(m=64, num_threads=2, num_nodes=2, mode=noalloc)
        ),
        "matmul": lambda: MatmulApplication(
            MatmulConfig(n=64, s=32, num_threads=2, num_nodes=2, mode=noalloc)
        ),
    }
    graph = builders[args.app]().build_graph()
    rows = [
        (v.name, v.kind.value, v.group,
         v.closes or "", v.max_in_flight or "")
        for v in graph.vertices.values()
    ]
    print(ascii_table(
        ("vertex", "kind", "group", "closes", "credits"),
        rows,
        title=f"flow graph {graph.name!r}",
    ))
    print()
    edge_rows = [
        (e.src, "->", e.dst, type(e.routing).__name__) for e in graph.edges
    ]
    print(ascii_table(("from", "", "to", "routing"), edge_rows, title="edges"))
    return 0
