"""Application subcommands: run LU, stencil, sample sort or matmul runs.

Each subcommand folds its options into a
:class:`~repro.scenario.spec.ScenarioSpec` and delegates to the scenario
runner via :func:`repro.cli.common.run_app` — the argparse layer owns
nothing but flag names.
"""

from __future__ import annotations

import argparse

from repro.cli.common import add_engine_options, run_app


# --------------------------------------------------------------------------
# lu
# --------------------------------------------------------------------------


def add_lu_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``lu`` subcommand."""
    p = sub.add_parser(
        "lu",
        help="parallel block LU factorization (the paper's test application)",
        description=(
            "Run the LU application under the simulator and/or the virtual "
            "cluster, with the paper's flow-graph variants (P, FC, PM) and "
            "dynamic thread-removal strategies."
        ),
    )
    p.add_argument("--n", type=int, default=2592, help="matrix size")
    p.add_argument("--r", type=int, default=324, help="decomposition block size")
    p.add_argument("--threads", type=int, default=8, help="worker threads")
    p.add_argument("--nodes", type=int, default=4, help="compute nodes")
    p.add_argument("--pipelined", action="store_true", help="P variant (Fig. 5)")
    p.add_argument(
        "--fc", type=int, default=None, metavar="CREDITS",
        help="flow-control credit limit (FC variant)",
    )
    p.add_argument(
        "--pm", type=int, default=None, metavar="S",
        help="parallel sub-block multiplication size (PM variant, Fig. 7)",
    )
    p.add_argument(
        "--kill", action="append", metavar="T,..@K", default=None,
        help="remove worker threads T,.. after iteration K (repeatable)",
    )
    add_engine_options(p)
    p.set_defaults(func=cmd_lu)


def cmd_lu(args: argparse.Namespace) -> int:
    """Run one LU configuration per the CLI options."""
    return run_app(
        args,
        "lu",
        {
            "n": args.n,
            "r": args.r,
            "num_threads": args.threads,
            "num_nodes": args.nodes,
            "pipelined": args.pipelined,
            "flow_control": args.fc,
            "pm_subblock": args.pm,
        },
    )


# --------------------------------------------------------------------------
# stencil
# --------------------------------------------------------------------------


def add_stencil_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``stencil`` subcommand."""
    p = sub.add_parser(
        "stencil",
        help="iterative Jacobi relaxation with halo exchange",
        description=(
            "Run the Jacobi stencil application; --barrier separates "
            "iterations through the main node and permits --kill."
        ),
    )
    p.add_argument("--n", type=int, default=768, help="grid side")
    p.add_argument("--stripes", type=int, default=8, help="row stripes")
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--threads", type=int, default=4, help="worker threads")
    p.add_argument("--nodes", type=int, default=4, help="compute nodes")
    p.add_argument("--barrier", action="store_true", help="basic (barrier) variant")
    p.add_argument(
        "--kill", action="append", metavar="T,..@K", default=None,
        help="remove worker threads T,.. after iteration K (needs --barrier)",
    )
    add_engine_options(p)
    p.set_defaults(func=cmd_stencil)


def cmd_stencil(args: argparse.Namespace) -> int:
    """Run one stencil configuration per the CLI options."""
    return run_app(
        args,
        "stencil",
        {
            "n": args.n,
            "stripes": args.stripes,
            "iterations": args.iterations,
            "num_threads": args.threads,
            "num_nodes": args.nodes,
            "barrier": args.barrier,
        },
    )


# --------------------------------------------------------------------------
# sort
# --------------------------------------------------------------------------


def add_sort_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``sort`` subcommand."""
    p = sub.add_parser(
        "sort",
        help="parallel sample sort (all-to-all exchange)",
        description="Run the sample-sort application.",
    )
    p.add_argument("--m", type=int, default=1 << 17, help="number of keys")
    p.add_argument("--threads", type=int, default=4, help="worker threads")
    p.add_argument("--nodes", type=int, default=4, help="compute nodes")
    add_engine_options(p)
    p.set_defaults(func=cmd_sort)


def cmd_sort(args: argparse.Namespace) -> int:
    """Run one sample-sort configuration per the CLI options."""
    return run_app(
        args,
        "sort",
        {
            "m": args.m,
            "num_threads": args.threads,
            "num_nodes": args.nodes,
        },
    )


# --------------------------------------------------------------------------
# matmul
# --------------------------------------------------------------------------


def add_matmul_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``matmul`` subcommand."""
    p = sub.add_parser(
        "matmul",
        help="parallel matrix multiplication (Fig. 7 flow graph)",
        description="Run the standalone matrix-multiplication application.",
    )
    p.add_argument("--n", type=int, default=512, help="matrix size")
    p.add_argument("--s", type=int, default=128, help="sub-block size")
    p.add_argument("--threads", type=int, default=4, help="worker threads")
    p.add_argument("--nodes", type=int, default=2, help="compute nodes")
    add_engine_options(p)
    p.set_defaults(func=cmd_matmul)


def cmd_matmul(args: argparse.Namespace) -> int:
    """Run one matrix-multiplication configuration per the CLI options."""
    return run_app(
        args,
        "matmul",
        {
            "n": args.n,
            "s": args.s,
            "num_threads": args.threads,
            "num_nodes": args.nodes,
        },
    )
