"""The ``serve`` subcommand: run the scenario service as a daemon.

Boots a :class:`~repro.service.server.ScenarioService` on the requested
address and blocks until interrupted.  ``--port 0`` binds an ephemeral
port; combined with ``--port-file`` (the bound port is written there once
the listener is up) that is how test harnesses and CI boot a server
without racing for a fixed port.  See ``docs/service.md`` for the HTTP
contract the daemon exposes.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal


def add_serve_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``serve`` subcommand."""
    p = sub.add_parser(
        "serve",
        help="long-lived scenario service (HTTP/JSON over a resident pool)",
        description=(
            "Serve scenario executions over HTTP: POST spec JSON to /run, "
            "poll /jobs/<id>, watch /stats.  Identical in-flight requests "
            "are deduplicated into one execution; a bounded queue answers "
            "429 under overload."
        ),
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8421, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="resident worker count (default: one per CPU)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=64,
        help="max queued jobs before 429 backpressure",
    )
    p.add_argument(
        "--pool", choices=("thread", "process"), default="process",
        help="worker mode: persistent worker processes (true parallelism) "
             "or in-process threads (lower latency, GIL-bound)",
    )
    p.add_argument(
        "--history", type=int, default=256,
        help="finished jobs retained for /jobs/<id> polling",
    )
    p.add_argument(
        "--job-retries", type=int, default=1,
        help="default extra attempts after a worker crash (per job; "
             "clients override with POST /run?max_retries=N)",
    )
    p.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound port here once listening (for --port 0)",
    )
    p.set_defaults(func=cmd_serve)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the service until SIGINT/SIGTERM."""
    return asyncio.run(_serve(args))


def _write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port: readers never see a partial file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(str(port))
    os.replace(tmp, path)


async def _serve(args: argparse.Namespace) -> int:
    from repro.service.server import ScenarioService

    service = ScenarioService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        mode=args.pool,
        history_limit=args.history,
        max_retries=args.job_retries,
    )
    await service.start(args.host, args.port)
    if args.port_file:
        # File I/O blocks the event loop (REP-C001): do it on a thread.
        await asyncio.to_thread(_write_port_file, args.port_file, service.port)
    print(
        f"repro serve: listening on {service.host}:{service.port} "
        f"({service.pool.mode} pool, {service.pool.workers} workers, "
        f"queue limit {service.pool.queue_limit})",
        flush=True,
    )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-POSIX loops
            loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        await service.close()
    print("repro serve: shut down", flush=True)
    return 0
