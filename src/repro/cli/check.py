"""``repro check`` — run the static invariant linter.

Checks the named paths (default: whichever of ``src``, ``benchmarks``,
``examples`` exist) against the rule pack in
:mod:`repro.staticcheck`.  Exit codes: 0 clean, 1 findings, 2 usage or
configuration error.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.errors import ConfigurationError

DEFAULT_PATHS = ("src", "benchmarks", "examples")


def add_check_parser(sub) -> None:
    """Register the ``check`` subcommand."""
    p = sub.add_parser(
        "check",
        help="statically check the tree against the project's invariants",
        description=(
            "AST-based invariant linter: determinism (REP-D), optional-"
            "import hygiene (REP-I), concurrency (REP-C) and registry/"
            "spec/docs consistency (REP-R). See docs/staticcheck.md."
        ),
    )
    p.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=(
            "files or directories to check (default: those of "
            f"{', '.join(DEFAULT_PATHS)} that exist)"
        ),
    )
    p.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help=(
            "only run rules matching this id or id prefix (repeatable; "
            "e.g. --rule REP-D selects the determinism pack)"
        ),
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit findings as a JSON document instead of one-liners",
    )
    p.add_argument(
        "--github", action="store_true",
        help="emit findings as GitHub Actions ::error annotations",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="list every rule id and summary, then exit",
    )
    p.add_argument(
        "--list-plugins", action="store_true",
        help=(
            "list the live default-registry plugin inventory REP-R001 "
            "checks against, then exit"
        ),
    )
    p.set_defaults(func=cmd_check)


def cmd_check(args: argparse.Namespace) -> int:
    """Entry point for ``repro check``."""
    from repro.staticcheck import DEFAULT_CONFIG, all_rules, run_check

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    if args.list_plugins:
        from repro.scenario import default_registry

        registry = default_registry()
        for kind in registry.kinds():
            for name in registry.names(kind):
                print(f"{kind}/{name}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            raise ConfigurationError(
                f"no such file or directory: {', '.join(missing)}"
            )
    else:
        paths = [Path(p) for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            raise ConfigurationError(
                "none of the default paths "
                f"({', '.join(DEFAULT_PATHS)}) exist here; name paths "
                "explicitly"
            )

    try:
        result = run_check(
            paths, rules, config=DEFAULT_CONFIG, only=args.rule
        )
    except ValueError as exc:  # unknown --rule selector
        raise ConfigurationError(str(exc)) from exc

    if args.json:
        print(result.to_json())
    else:
        for finding in result.findings:
            print(
                finding.render_github() if args.github else finding.render()
            )
        noun = "file" if result.files_checked == 1 else "files"
        print(
            f"repro check: {result.files_checked} {noun}, "
            f"{len(result.findings)} finding(s)"
        )
    return 0 if result.ok else 1


__all__ = ["add_check_parser", "cmd_check"]
