"""Machine profiles: converting kernel work (flops) into seconds.

A profile characterizes one node type of the target cluster.  The paper's
evaluation platform is a cluster of Sun workstations with single 440 MHz
UltraSparc II processors; Table 1 additionally uses a 2.8 GHz Pentium 4 as a
(faster) simulation host.  Profiles are calibrated against the paper's
absolute anchors:

* serial LU of a 2592x2592 matrix (r = 216): **185.1 s** on the UltraSparc,
* direct-execution simulation 6.5x faster on the Pentium 4 (29.7 s vs 193 s).

The efficiency curve captures cache behaviour: very small blocks pay loop
and call overhead, blocks whose working set exceeds the cache pay memory
stalls.  This is what makes the decomposition-granularity experiments
(Figs. 8 and 10) non-trivial — the compute side, not only the communication
side, depends on ``r``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import KB
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class MachineProfile:
    """Per-node compute characterization.

    Parameters
    ----------
    name:
        Human-readable identifier.
    effective_mflops:
        Sustained double-precision MFLOP/s on a dense kernel whose working
        set fits the cache (the plateau of the efficiency curve).
    cache_bytes:
        Effective cache capacity; working sets beyond it run at
        ``memory_bound_factor`` of the plateau.
    small_overhead_bytes:
        Working sets below this size pay per-call overhead, approaching
        ``small_block_factor`` of the plateau as size goes to zero.
    memory_bound_factor:
        Efficiency multiplier for far-out-of-cache working sets, in (0, 1].
    small_block_factor:
        Efficiency multiplier for tiny working sets, in (0, 1].
    """

    name: str
    effective_mflops: float
    cache_bytes: float = 2048 * KB
    small_overhead_bytes: float = 48 * KB
    memory_bound_factor: float = 0.55
    small_block_factor: float = 0.50

    def __post_init__(self) -> None:
        check_positive("effective_mflops", self.effective_mflops)
        check_positive("cache_bytes", self.cache_bytes)
        check_positive("small_overhead_bytes", self.small_overhead_bytes)
        check_in_range("memory_bound_factor", self.memory_bound_factor, 0.0, 1.0)
        check_in_range("small_block_factor", self.small_block_factor, 0.0, 1.0)

    # ------------------------------------------------------------- queries
    def efficiency(self, working_set_bytes: float) -> float:
        """Cache-efficiency multiplier for a kernel touching ``working_set_bytes``.

        Smooth interpolation: rises from ``small_block_factor`` over the
        overhead knee, plateaus at 1.0, then falls to ``memory_bound_factor``
        past the cache capacity.  Smoothness keeps parameter sweeps free of
        artificial cliffs.
        """
        w = max(1.0, float(working_set_bytes))
        # Overhead knee (log-sigmoid rising through small_overhead_bytes).
        rise = 1.0 / (1.0 + (self.small_overhead_bytes / w) ** 1.5)
        low = self.small_block_factor + (1.0 - self.small_block_factor) * rise
        # Cache cliff (log-sigmoid falling through cache_bytes).
        fall = 1.0 / (1.0 + (w / self.cache_bytes) ** 1.5)
        high = self.memory_bound_factor + (1.0 - self.memory_bound_factor) * fall
        return low * high

    def flops_per_second(self, working_set_bytes: float) -> float:
        """Sustained flop rate for a kernel with the given working set."""
        return self.effective_mflops * 1e6 * self.efficiency(working_set_bytes)

    def seconds_for(self, flops: float, working_set_bytes: float) -> float:
        """Time to execute ``flops`` with the given working set, in seconds."""
        if flops < 0.0 or not math.isfinite(flops):
            raise ValueError(f"flops must be finite and >= 0, got {flops!r}")
        if flops == 0.0:
            return 0.0
        return flops / self.flops_per_second(working_set_bytes)

    def speed_ratio(self, other: "MachineProfile") -> float:
        """Plateau speed of ``self`` relative to ``other`` (>1 means faster)."""
        return self.effective_mflops / other.effective_mflops


#: The paper's cluster node: Sun workstation, single 440 MHz UltraSparc II.
#: Calibrated so serial LU(2592, r=216) lands near the paper's 185.1 s; see
#: tests/apps/test_lu_calibration.py.
ULTRASPARC_II_440 = MachineProfile(
    name="UltraSparc II 440MHz",
    effective_mflops=72.0,
    cache_bytes=2048 * KB,
    small_overhead_bytes=40 * KB,
    memory_bound_factor=0.62,
    small_block_factor=0.55,
)

#: The faster simulation host of Table 1 (2.8 GHz Pentium 4, Windows);
#: ~6.5x the UltraSparc on the LU kernels (193.0 s -> 29.7 s in Table 1).
PENTIUM4_2800 = MachineProfile(
    name="Pentium 4 2.8GHz",
    effective_mflops=468.0,
    cache_bytes=512 * KB,
    small_overhead_bytes=24 * KB,
    memory_bound_factor=0.50,
    small_block_factor=0.60,
)

#: A contemporary core, for what-if examples scaling the paper forward.
MODERN_XEON = MachineProfile(
    name="Modern Xeon core",
    effective_mflops=25000.0,
    cache_bytes=32 * 1024 * KB,
    small_overhead_bytes=64 * KB,
    memory_bound_factor=0.35,
    small_block_factor=0.45,
)
