"""The paper's CPU model: even sharing of the remaining processing power.

"We also assume that the processing power not used for communications is
shared evenly among all running operations, and that no memory swapping
occurs." — section 4.

Each node's running compute steps drain through a single fluid pool whose
allocator gives every step on node ``i`` the rate::

    rate = available_power(i) / n_running(i)

where ``available_power`` comes from the communication cost model and the
attached network's concurrent-transfer counts.  A network change triggers a
rate recomputation, so overlapping communication slows computation exactly
as in the paper's model.
"""

from __future__ import annotations

from typing import Any

from repro.cpumodel.base import CompletionCallback, CpuModel, CpuTaskHandle
from repro.cpumodel.commcost import CommCostModel
from repro.des.fluid import FluidPool, FluidTask
from repro.des.kernel import Kernel
from repro.errors import SimulationError


class SharedCpuModel(CpuModel):
    """Even-share fluid CPU model (the simulator's model)."""

    def __init__(self, kernel: Kernel, comm_cost: CommCostModel | None = None) -> None:
        super().__init__(kernel, comm_cost)
        self._pool = FluidPool(kernel, self._allocate, name="shared-cpu")
        self._running: dict[int, int] = {}

    # ----------------------------------------------------------------- api
    def submit(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> CpuTaskHandle:
        if work < 0.0:
            raise SimulationError(f"compute work must be >= 0, got {work!r}")
        handle = CpuTaskHandle(node, work, on_complete, tag)
        self._running[node] = self._running.get(node, 0) + 1
        fluid = FluidTask(work, self._step_done, tag=handle)
        handle.fluid = fluid
        self._pool.add(fluid)
        return handle

    def running_steps(self, node: int) -> int:
        return self._running.get(node, 0)

    # ------------------------------------------------------------ internals
    def _step_done(self, task: FluidTask) -> None:
        handle: CpuTaskHandle = task.tag
        self._running[handle.node] -= 1
        self._record_completion(handle.node, handle.work)
        handle.on_complete(handle)

    def _allocate(self, tasks: list[FluidTask]) -> None:
        power_cache: dict[int, float] = {}
        for task in tasks:
            node = task.tag.node
            if node not in power_cache:
                power_cache[node] = self._node_power(node)
            task.rate = power_cache[node] / self._running[node]

    def _on_network_change(self) -> None:
        self._pool.reallocate()
