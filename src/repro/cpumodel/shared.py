"""The paper's CPU model: even sharing of the remaining processing power.

"We also assume that the processing power not used for communications is
shared evenly among all running operations, and that no memory swapping
occurs." — section 4.

Each node's running compute steps drain through a single fluid pool whose
allocator gives every step on node ``i`` the rate::

    rate = available_power(i) / n_running(i)

where ``available_power`` comes from the communication cost model and the
attached network's concurrent-transfer counts.  A network change triggers a
rate recomputation, so overlapping communication slows computation exactly
as in the paper's model.

Rates are maintained *incrementally*: a step arriving or departing on node
``i`` can only change the rates of the other steps on node ``i``, and a
network change only re-rates steps on the nodes whose transfer counts
actually changed (the network passes those nodes along with its
notification).  Steps on untouched nodes keep their rates.  The slice-group
and power-cache machinery lives in
:class:`~repro.cpumodel.base.NodeSlicedAllocator`; this module contributes
only the even-share law.
"""

from __future__ import annotations

from typing import Optional

from repro.cpumodel.base import (
    CompletionCallback,
    CpuModel,
    CpuTaskHandle,
    NodeSlicedAllocator,
)
from repro.cpumodel.commcost import CommCostModel
from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator
from repro.des.kernel import Kernel
from repro.errors import SimulationError


class IncrementalSharedCpuAllocator(NodeSlicedAllocator):
    """Even-share CPU rates, recomputed only for nodes that changed."""

    def _group_rate(self, power: float, resident: int) -> float:
        return power / resident


class SharedCpuModel(CpuModel):
    """Even-share fluid CPU model (the simulator's model).

    ``incremental=False`` restores the full recompute-everything allocator;
    ``verify_incremental=True`` shadows every incremental update with a full
    recompute and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        comm_cost: CommCostModel | None = None,
        incremental: bool = True,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, comm_cost)
        allocator_cls = (
            IncrementalSharedCpuAllocator if incremental else _FullSharedCpuAllocator
        )
        self.allocator = allocator_cls(self, verify=verify_incremental)
        self._pool = FluidPool(kernel, self.allocator, name="shared-cpu")
        self._running: dict[int, int] = {}

    # ----------------------------------------------------------------- api
    def submit(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> CpuTaskHandle:
        if work < 0.0:
            raise SimulationError(f"compute work must be >= 0, got {work!r}")
        handle = CpuTaskHandle(node, work, on_complete, tag)
        self._running[node] = self._running.get(node, 0) + 1
        fluid = FluidTask(work, self._step_done, tag=handle)
        handle.fluid = fluid
        self._pool.add(fluid)
        return handle

    def running_steps(self, node: int) -> int:
        return self._running.get(node, 0)

    # ------------------------------------------------------------ internals
    def _step_done(self, task: FluidTask) -> None:
        handle: CpuTaskHandle = task.tag
        self._running[handle.node] -= 1
        self._record_completion(handle.node, handle.work)
        handle.on_complete(handle)

    def _on_network_change(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        self._pool.reallocate(hint=nodes)


class _FullSharedCpuAllocator(FullRecomputeAllocator, IncrementalSharedCpuAllocator):
    """Full recomputation on every change (baseline)."""
