"""The paper's CPU model: even sharing of the remaining processing power.

"We also assume that the processing power not used for communications is
shared evenly among all running operations, and that no memory swapping
occurs." — section 4.

Each node's running compute steps drain through a single fluid pool whose
allocator gives every step on node ``i`` the rate::

    rate = available_power(i) / n_running(i)

where ``available_power`` comes from the communication cost model and the
attached network's concurrent-transfer counts.  A network change triggers a
rate recomputation, so overlapping communication slows computation exactly
as in the paper's model.

Rates are maintained *incrementally*: a step arriving or departing on node
``i`` can only change the rates of the other steps on node ``i``, and a
network change only re-rates steps on the nodes whose transfer counts
actually changed (the network passes those nodes along with its
notification).  Steps on untouched nodes keep their rates.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.cpumodel.base import CompletionCallback, CpuModel, CpuTaskHandle
from repro.cpumodel.commcost import CommCostModel
from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator, RateAllocator
from repro.des.kernel import Kernel
from repro.errors import SimulationError


class IncrementalSharedCpuAllocator(RateAllocator):
    """Even-share CPU rates, recomputed only for nodes that changed.

    Maintains a node → running-steps index plus a cache of each node's
    available power; membership changes re-rate only the changed nodes'
    steps, and network refreshes re-rate only nodes whose cached power
    actually moved.
    """

    def __init__(self, model: "SharedCpuModel", verify: bool = False) -> None:
        super().__init__(verify=verify)
        self._model = model
        self._node_tasks: dict[int, set[FluidTask]] = {}
        self._power: dict[int, float] = {}

    # ---------------------------------------------------------------- helpers
    def _rerate_node(self, node: int) -> int:
        """Assign rates on ``node``; returns the number of steps touched."""
        steps = self._node_tasks.get(node)
        if not steps:
            self._power.pop(node, None)
            return 0
        power = self._power.get(node)
        if power is None:
            power = self._model._node_power(node)
            self._power[node] = power
        rate = power / len(steps)
        for task in steps:
            task.rate = rate
        return len(steps)

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: list[FluidTask]) -> None:
        # Rebuild the index and power cache from scratch: the full path must
        # not depend on incremental bookkeeping being in sync.
        self._node_tasks = {}
        for task in tasks:
            self._node_tasks.setdefault(task.tag.node, set()).add(task)
        self._power = {
            node: self._model._node_power(node) for node in self._node_tasks
        }
        for node in self._node_tasks:
            self._rerate_node(node)

    def _update(
        self,
        tasks: list[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        dirty_nodes: set[int] = set()
        for task in removed:
            node = task.tag.node
            members = self._node_tasks.get(node)
            if members is not None:
                members.discard(task)
                if not members:
                    del self._node_tasks[node]
            dirty_nodes.add(node)
        for task in added:
            node = task.tag.node
            self._node_tasks.setdefault(node, set()).add(task)
            dirty_nodes.add(node)
        for node in dirty_nodes:
            # Recompute the node's power rather than trusting the cache: a
            # transfer-completion callback can submit work before the
            # network's change notification arrives, and the cached power
            # would be stale for that window.
            self._power.pop(node, None)
            self.stats.rates_computed += self._rerate_node(node)

    def _refresh(self, tasks: list[FluidTask], hint: Any = None) -> None:
        nodes = list(self._node_tasks) if hint is None else list(hint)
        for node in nodes:
            if node not in self._node_tasks:
                self._power.pop(node, None)
                continue
            power = self._model._node_power(node)
            if power != self._power.get(node):
                self._power[node] = power
                self.stats.rates_computed += self._rerate_node(node)


class SharedCpuModel(CpuModel):
    """Even-share fluid CPU model (the simulator's model).

    ``incremental=False`` restores the full recompute-everything allocator;
    ``verify_incremental=True`` shadows every incremental update with a full
    recompute and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        comm_cost: CommCostModel | None = None,
        incremental: bool = True,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, comm_cost)
        allocator_cls = (
            IncrementalSharedCpuAllocator if incremental else _FullSharedCpuAllocator
        )
        self.allocator = allocator_cls(self, verify=verify_incremental)
        self._pool = FluidPool(kernel, self.allocator, name="shared-cpu")
        self._running: dict[int, int] = {}

    # ----------------------------------------------------------------- api
    def submit(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> CpuTaskHandle:
        if work < 0.0:
            raise SimulationError(f"compute work must be >= 0, got {work!r}")
        handle = CpuTaskHandle(node, work, on_complete, tag)
        self._running[node] = self._running.get(node, 0) + 1
        fluid = FluidTask(work, self._step_done, tag=handle)
        handle.fluid = fluid
        self._pool.add(fluid)
        return handle

    def running_steps(self, node: int) -> int:
        return self._running.get(node, 0)

    # ------------------------------------------------------------ internals
    def _step_done(self, task: FluidTask) -> None:
        handle: CpuTaskHandle = task.tag
        self._running[handle.node] -= 1
        self._record_completion(handle.node, handle.work)
        handle.on_complete(handle)

    def _on_network_change(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        self._pool.reallocate(hint=nodes)


class _FullSharedCpuAllocator(FullRecomputeAllocator, IncrementalSharedCpuAllocator):
    """Full recomputation on every change (baseline)."""
