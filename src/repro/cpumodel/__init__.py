"""Processing-power models.

Section 4 of the paper: "Receiving data objects induces more interrupts and
more memory copies than sending data objects, and is thus more costly.
Moreover, the consumed processing power depends on the number of outgoing
and incoming communications. [...] The processing power not used for
communications is shared evenly among all running operations."

This subpackage provides

* :class:`~repro.cpumodel.machines.MachineProfile` — flops-to-seconds
  conversion with a cache-dependent efficiency curve,
* :class:`~repro.cpumodel.commcost.CommCostModel` — processing power
  consumed by concurrent communications,
* :class:`~repro.cpumodel.shared.SharedCpuModel` — the paper's even-sharing
  model, and
* :class:`~repro.cpumodel.timeslice.TimesliceCpuModel` — the testbed's
  finer model with context-switch overhead and seeded OS noise.
"""

from repro.cpumodel.machines import (
    MachineProfile,
    PENTIUM4_2800,
    ULTRASPARC_II_440,
    MODERN_XEON,
)
from repro.cpumodel.commcost import CommCostModel, CommCostParams
from repro.cpumodel.base import CpuModel, CpuTaskHandle, NodeSlicedAllocator
from repro.cpumodel.shared import SharedCpuModel
from repro.cpumodel.timeslice import TimesliceCpuModel, TimesliceParams

__all__ = [
    "MachineProfile",
    "ULTRASPARC_II_440",
    "PENTIUM4_2800",
    "MODERN_XEON",
    "CommCostModel",
    "CommCostParams",
    "CpuModel",
    "CpuTaskHandle",
    "NodeSlicedAllocator",
    "SharedCpuModel",
    "TimesliceCpuModel",
    "TimesliceParams",
]
