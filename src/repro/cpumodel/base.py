"""Abstract CPU-model interface.

A CPU model executes *compute atomic steps*: quantities of work expressed in
seconds-at-full-dedicated-power on the node's machine profile.  The model
decides how long a step really takes given everything else running on the
node (other operations, communication handling).

This module also hosts :class:`NodeSlicedAllocator`, the shared incremental
rate-allocation machinery for CPU models (see the allocator protocol in
:mod:`repro.des.fluid` and ``docs/allocator_protocol.md``): steps on one
host form a *slice group* whose rates depend only on that host's available
power and group size, so membership changes re-rate one group and network
refreshes re-rate only groups whose cached power actually moved.  Concrete
models subclass it and implement only the per-group rate law.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Collection, Optional, Sequence

from repro.cpumodel.commcost import CommCostModel
from repro.des.fluid import FluidTask, RateAllocator, pool_horizon_stats
from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel

CompletionCallback = Callable[["CpuTaskHandle"], None]


class CpuTaskHandle:
    """Handle to a compute step admitted to a CPU model."""

    __slots__ = ("node", "work", "on_complete", "tag", "fluid")

    def __init__(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> None:
        self.node = int(node)
        self.work = float(work)
        self.on_complete = on_complete
        self.tag = tag
        self.fluid: Optional[FluidTask] = None


class CpuModel(ABC):
    """Executes compute steps on virtual nodes, coupled to a network model.

    When a network model is attached, its concurrent-transfer counts reduce
    the processing power available to compute steps, per the paper's model.
    """

    def __init__(self, kernel: Kernel, comm_cost: CommCostModel | None = None) -> None:
        self.kernel = kernel
        self.comm_cost = comm_cost or CommCostModel()
        self.network: Optional[NetworkModel] = None
        #: cumulative busy work completed per node (for utilization metrics)
        self.completed_work: dict[int, float] = {}

    def attach_network(self, network: NetworkModel) -> None:
        """Couple to ``network``: transfer activity now consumes CPU power."""
        self.network = network
        network.add_listener(self._on_network_change)

    @property
    def horizon_stats(self):
        """Completion-horizon counters of the backing pool (None if none)."""
        return pool_horizon_stats(self)

    # ------------------------------------------------------------ subclass
    @abstractmethod
    def submit(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> CpuTaskHandle:
        """Admit a compute step of ``work`` seconds-at-full-power on ``node``."""

    @abstractmethod
    def running_steps(self, node: int) -> int:
        """Number of compute steps currently running on ``node``."""

    @abstractmethod
    def _on_network_change(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        """React to a change in concurrent-transfer counts.

        ``nodes`` names the nodes whose counts changed (``None`` means
        unknown — refresh everything).
        """

    # ------------------------------------------------------------- helpers
    def _node_power(self, node: int) -> float:
        """Power available for operations on ``node`` (0..1)."""
        if self.network is None:
            return 1.0
        return self.comm_cost.available_power(
            self.network.concurrent_incoming(node),
            self.network.concurrent_outgoing(node),
        )

    def _record_completion(self, node: int, work: float) -> None:
        self.completed_work[node] = self.completed_work.get(node, 0.0) + work


# --------------------------------------------------------------------------
# shared incremental-allocator machinery (per-host slice groups)
# --------------------------------------------------------------------------


class NodeSlicedAllocator(RateAllocator):
    """Per-host slice groups with cached available power.

    Every step on host ``i`` receives the same rate, a function of the
    host's available power and the number of resident steps only — so a
    membership change re-rates exactly the changed hosts' groups, and a
    network refresh re-rates only hosts whose cached power actually moved
    (the network passes the changed nodes as the ``hint``).  Subclasses
    implement :meth:`_group_rate` — the per-step rate law.

    Complexity contract: a membership delta costs O(steps on the changed
    hosts); a refresh costs O(hinted hosts) index probes plus O(steps on
    hosts whose power moved) rate assignments; the full path is O(n).
    See ``docs/allocator_protocol.md``.

    Group membership uses insertion-ordered dicts (dict-as-set) so that
    iteration order — and with it any float accumulation a subclass might
    add — stays identical between runs regardless of hash seeds.
    """

    def __init__(self, model: "CpuModel", verify: bool = False) -> None:
        super().__init__(verify=verify)
        self._model = model
        self._node_tasks: dict[int, dict[FluidTask, None]] = {}
        self._power: dict[int, float] = {}

    # ---------------------------------------------------------------- hooks
    def _group_rate(self, power: float, resident: int) -> float:
        """Rate of each step on a host with ``resident`` runnable steps."""
        raise NotImplementedError

    def _node_of(self, task: FluidTask) -> int:
        """Host id of a step (``CpuTaskHandle`` tags by default)."""
        return task.tag.node

    # -------------------------------------------------------------- helpers
    def _rerate_node(self, node: int) -> int:
        """Assign rates on ``node``; returns the number of steps touched."""
        steps = self._node_tasks.get(node)
        if not steps:
            self._power.pop(node, None)
            return 0
        power = self._power.get(node)
        if power is None:
            power = self._model._node_power(node)
            self._power[node] = power
        rate = self._group_rate(power, len(steps))
        for task in steps:
            task.rate = rate
        return len(steps)

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: Collection[FluidTask]) -> None:
        # Rebuild the index and power cache from scratch: the full path must
        # not depend on incremental bookkeeping being in sync.
        self._node_tasks = {}
        for task in tasks:
            self._node_tasks.setdefault(self._node_of(task), {})[task] = None
        self._power = {
            node: self._model._node_power(node) for node in self._node_tasks
        }
        for node in self._node_tasks:
            self._rerate_node(node)

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        dirty_nodes: dict[int, None] = {}
        for task in removed:
            node = self._node_of(task)
            members = self._node_tasks.get(node)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._node_tasks[node]
            dirty_nodes[node] = None
        for task in added:
            node = self._node_of(task)
            self._node_tasks.setdefault(node, {})[task] = None
            dirty_nodes[node] = None
        for node in dirty_nodes:
            # Recompute the node's power rather than trusting the cache: a
            # transfer-completion callback can submit work before the
            # network's change notification arrives, and the cached power
            # would be stale for that window.
            self._power.pop(node, None)
            self.stats.rates_computed += self._rerate_node(node)

    def _refresh(self, tasks: Collection[FluidTask], hint: Any = None) -> None:
        nodes = list(self._node_tasks) if hint is None else list(hint)
        for node in nodes:
            if node not in self._node_tasks:
                self._power.pop(node, None)
                continue
            power = self._model._node_power(node)
            if power != self._power.get(node):
                self._power[node] = power
                self.stats.rates_computed += self._rerate_node(node)
