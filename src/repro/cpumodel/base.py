"""Abstract CPU-model interface.

A CPU model executes *compute atomic steps*: quantities of work expressed in
seconds-at-full-dedicated-power on the node's machine profile.  The model
decides how long a step really takes given everything else running on the
node (other operations, communication handling).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from repro.cpumodel.commcost import CommCostModel
from repro.des.fluid import FluidTask
from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel

CompletionCallback = Callable[["CpuTaskHandle"], None]


class CpuTaskHandle:
    """Handle to a compute step admitted to a CPU model."""

    __slots__ = ("node", "work", "on_complete", "tag", "fluid")

    def __init__(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> None:
        self.node = int(node)
        self.work = float(work)
        self.on_complete = on_complete
        self.tag = tag
        self.fluid: Optional[FluidTask] = None


class CpuModel(ABC):
    """Executes compute steps on virtual nodes, coupled to a network model.

    When a network model is attached, its concurrent-transfer counts reduce
    the processing power available to compute steps, per the paper's model.
    """

    def __init__(self, kernel: Kernel, comm_cost: CommCostModel | None = None) -> None:
        self.kernel = kernel
        self.comm_cost = comm_cost or CommCostModel()
        self.network: Optional[NetworkModel] = None
        #: cumulative busy work completed per node (for utilization metrics)
        self.completed_work: dict[int, float] = {}

    def attach_network(self, network: NetworkModel) -> None:
        """Couple to ``network``: transfer activity now consumes CPU power."""
        self.network = network
        network.add_listener(self._on_network_change)

    # ------------------------------------------------------------ subclass
    @abstractmethod
    def submit(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> CpuTaskHandle:
        """Admit a compute step of ``work`` seconds-at-full-power on ``node``."""

    @abstractmethod
    def running_steps(self, node: int) -> int:
        """Number of compute steps currently running on ``node``."""

    @abstractmethod
    def _on_network_change(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        """React to a change in concurrent-transfer counts.

        ``nodes`` names the nodes whose counts changed (``None`` means
        unknown — refresh everything).
        """

    # ------------------------------------------------------------- helpers
    def _node_power(self, node: int) -> float:
        """Power available for operations on ``node`` (0..1)."""
        if self.network is None:
            return 1.0
        return self.comm_cost.available_power(
            self.network.concurrent_incoming(node),
            self.network.concurrent_outgoing(node),
        )

    def _record_completion(self, node: int, work: float) -> None:
        self.completed_work[node] = self.completed_work.get(node, 0.0) + work
