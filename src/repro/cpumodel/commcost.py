"""Processing power consumed by communication handling.

Paper, section 4: "Receiving data objects induces more interrupts and more
memory copies than sending data objects, and is thus more costly.  Moreover,
we noticed that the consumed processing power depends on the number of
outgoing and incoming communications."  And: "the required processing power
for communications must be measured separately and provided to the
simulator" — i.e. these are platform parameters characterized once.

The model charges a fraction of the node's processing power per concurrent
transfer, different for the incoming and outgoing directions, with
diminishing marginal cost (the k-th concurrent transfer costs
``fraction * decay^(k-1)``) and a hard saturation so communications can
never consume the whole CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_non_negative


@dataclass(frozen=True)
class CommCostParams:
    """Platform parameters of the communication CPU-cost model.

    Defaults are representative of a late-90s TCP/IP stack on a 100 Mb/s
    NIC without interrupt coalescing, where sustaining a full-rate receive
    stream costs on the order of 10-20% of the CPU and sends roughly half
    of that.
    """

    recv_fraction: float = 0.12
    send_fraction: float = 0.05
    marginal_decay: float = 0.92
    max_fraction: float = 0.55

    def __post_init__(self) -> None:
        check_in_range("recv_fraction", self.recv_fraction, 0.0, 1.0)
        check_in_range("send_fraction", self.send_fraction, 0.0, 1.0)
        check_in_range("marginal_decay", self.marginal_decay, 0.0, 1.0)
        check_in_range("max_fraction", self.max_fraction, 0.0, 1.0)


#: Zero-cost parameters: communications are free (ablation switch).
FREE_COMMUNICATION = CommCostParams(
    recv_fraction=0.0, send_fraction=0.0, marginal_decay=1.0, max_fraction=0.0
)


class CommCostModel:
    """Maps concurrent transfer counts to consumed processing power."""

    def __init__(self, params: CommCostParams | None = None) -> None:
        self.params = params or CommCostParams()

    def _direction_cost(self, count: int, fraction: float) -> float:
        """Sum of geometrically decaying per-transfer costs."""
        count = max(0, int(count))
        check_non_negative("count", count)
        decay = self.params.marginal_decay
        if count == 0 or fraction == 0.0:
            return 0.0
        if decay == 1.0:
            return fraction * count
        return fraction * (1.0 - decay**count) / (1.0 - decay)

    def consumed_power(self, incoming: int, outgoing: int) -> float:
        """Fraction of the node's power consumed handling communications.

        ``incoming``/``outgoing`` are the numbers of concurrent transfers in
        each direction; the result saturates at ``max_fraction``.
        """
        cost = self._direction_cost(
            incoming, self.params.recv_fraction
        ) + self._direction_cost(outgoing, self.params.send_fraction)
        return min(self.params.max_fraction, cost)

    def available_power(self, incoming: int, outgoing: int) -> float:
        """Fraction of the node's power left for running operations."""
        return 1.0 - self.consumed_power(incoming, outgoing)
