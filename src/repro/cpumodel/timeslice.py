"""Ground-truth CPU model for the virtual-cluster testbed.

Real operating systems do not share the CPU as an ideal fluid: timeslicing
costs context switches and cache refills, the network stack steals cycles in
bursts, and daemons inject noise.  This model layers those effects on top of
the even-share law so that the testbed's "measurements" deviate from the
simulator's predictions the way a real cluster deviates from the paper's
model:

* **multiprogramming overhead** — with ``n`` runnable steps, each receives
  ``available / n / (1 + csw_overhead * (n - 1))`` — the contended CPU
  delivers strictly less aggregate throughput than the fluid ideal;
* **nonlinear communication cost** — the per-transfer CPU cost uses a
  slightly different (convex) law than the simulator's concave one;
* **seeded OS noise** — every step's total work is inflated by a
  multiplicative lognormal factor, sampled once per step.

Rate allocation is *incremental* by default: the overheadful rate of a step
still depends only on its own host's available power and slice-group size,
so the per-host machinery of
:class:`~repro.cpumodel.base.NodeSlicedAllocator` applies unchanged — this
module contributes only the degraded rate law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.cpumodel.base import (
    CompletionCallback,
    CpuModel,
    CpuTaskHandle,
    NodeSlicedAllocator,
)
from repro.cpumodel.commcost import CommCostModel, CommCostParams
from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator
from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.util.rng import SeedSequenceFactory
from repro.util.validation import check_in_range, check_non_negative


@dataclass(frozen=True)
class TimesliceParams:
    """Fidelity knobs of the testbed CPU model."""

    csw_overhead: float = 0.008
    noise_sigma: float = 0.012
    recv_fraction: float = 0.125
    send_fraction: float = 0.052
    comm_superlinear: float = 1.03

    def __post_init__(self) -> None:
        check_non_negative("csw_overhead", self.csw_overhead)
        check_non_negative("noise_sigma", self.noise_sigma)
        check_in_range("recv_fraction", self.recv_fraction, 0.0, 1.0)
        check_in_range("send_fraction", self.send_fraction, 0.0, 1.0)
        check_in_range("comm_superlinear", self.comm_superlinear, 1.0, 2.0)


class _ConvexCommCost(CommCostModel):
    """Slightly superlinear per-transfer communication cost."""

    def __init__(self, ts: TimesliceParams) -> None:
        super().__init__(
            CommCostParams(
                recv_fraction=ts.recv_fraction,
                send_fraction=ts.send_fraction,
                marginal_decay=1.0,
                max_fraction=0.58,
            )
        )
        self._super = ts.comm_superlinear

    def consumed_power(self, incoming: int, outgoing: int) -> float:
        base = (
            self.params.recv_fraction * (max(0, incoming) ** self._super)
            + self.params.send_fraction * (max(0, outgoing) ** self._super)
        )
        return min(self.params.max_fraction, base)


class IncrementalTimesliceAllocator(NodeSlicedAllocator):
    """Overhead-degraded slice rates, recomputed only for changed hosts."""

    def __init__(
        self,
        model: "TimesliceCpuModel",
        csw_overhead: float,
        verify: bool = False,
    ) -> None:
        super().__init__(model, verify=verify)
        self._csw_overhead = csw_overhead

    def _group_rate(self, power: float, resident: int) -> float:
        degraded = power / (1.0 + self._csw_overhead * (resident - 1))
        return degraded / resident


class _FullTimesliceAllocator(FullRecomputeAllocator, IncrementalTimesliceAllocator):
    """Full recomputation on every change (baseline)."""


class TimesliceCpuModel(CpuModel):
    """Noisy, overhead-laden CPU model used as ground truth by the testbed.

    ``incremental=False`` restores the full recompute-everything allocator;
    ``verify_incremental=True`` shadows every incremental update with a full
    recompute and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TimesliceParams | None = None,
        seed: int = 0,
        incremental: bool = True,
        verify_incremental: bool = False,
    ) -> None:
        ts = params or TimesliceParams()
        super().__init__(kernel, _ConvexCommCost(ts))
        self.params = ts
        self._rng = SeedSequenceFactory(seed).rng("timeslice-cpu")
        allocator_cls = (
            IncrementalTimesliceAllocator if incremental else _FullTimesliceAllocator
        )
        self.allocator = allocator_cls(
            self, ts.csw_overhead, verify=verify_incremental
        )
        self._pool = FluidPool(kernel, self.allocator, name="timeslice-cpu")
        self._running: dict[int, int] = {}

    # ----------------------------------------------------------------- api
    def submit(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> CpuTaskHandle:
        if work < 0.0:
            raise SimulationError(f"compute work must be >= 0, got {work!r}")
        handle = CpuTaskHandle(node, work, on_complete, tag)
        noise = 1.0
        if self.params.noise_sigma > 0.0 and work > 0.0:
            noise = float(
                self._rng.lognormal(mean=0.0, sigma=self.params.noise_sigma)
            )
        self._running[node] = self._running.get(node, 0) + 1
        fluid = FluidTask(work * noise, self._step_done, tag=handle)
        handle.fluid = fluid
        self._pool.add(fluid)
        return handle

    def running_steps(self, node: int) -> int:
        return self._running.get(node, 0)

    # ------------------------------------------------------------ internals
    def _step_done(self, task: FluidTask) -> None:
        handle: CpuTaskHandle = task.tag
        self._running[handle.node] -= 1
        self._record_completion(handle.node, handle.work)
        handle.on_complete(handle)

    def _on_network_change(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        self._pool.reallocate(hint=nodes)
