"""Structure-of-arrays CPU models: the numpy backend of the CPU layer.

The scalar CPU models keep one :class:`~repro.des.fluid.FluidTask` per
compute step and re-rate slice groups through per-object dict walks
(:class:`~repro.cpumodel.base.NodeSlicedAllocator`).  This module fuses the
pool and the allocator into a :class:`~repro.des.soa.SoaFluidEngine`
subclass that stores every step as a row of parallel arrays (host id, work,
remaining, rate) and assigns rates with one vectorized pass: group sizes by
``bincount`` over the host column, the per-host rate law broadcast over the
live slots.

The rate laws are the scalar ones, reproduced operation for operation so
both backends compute bit-identical rates:

* shared (:class:`SharedCpuModelSoA`) — ``power / resident``;
* timeslice (:class:`TimesliceCpuModelSoA`) —
  ``power / (1 + csw_overhead * (resident - 1)) / resident``, with the
  same seeded lognormal work inflation drawn from the same RNG stream in
  the same order as the scalar model.

Available power per host still comes from the scalar
:class:`~repro.cpumodel.commcost.CommCostModel` (a handful of Python calls
per solve — one per distinct dirty host), cached exactly like the scalar
allocator caches it: a membership delta invalidates the changed hosts'
entries, a network refresh re-reads the hinted hosts and re-rates only when
a cached power actually moved.

``verify_incremental=True`` shadows every solve with a from-scratch
recomputation of the law (fresh powers, fresh group sizes) and raises
:class:`~repro.errors.SimulationError` on divergence beyond 1e-9 relative.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cpumodel.base import CompletionCallback, CpuModel, CpuTaskHandle
from repro.cpumodel.commcost import CommCostModel
from repro.cpumodel.timeslice import TimesliceParams, _ConvexCommCost
from repro.des.kernel import Kernel
from repro.des.soa import SoaFluidEngine, np
from repro.errors import SimulationError

_VERIFY_RTOL = 1e-9


class _CpuSoaEngine(SoaFluidEngine):
    """Per-host slice groups over parallel arrays.

    Subclasses implement :meth:`_rate_law`, the per-step rate as a function
    of host power and resident count.  It is written once and evaluated
    both vectorized (numpy arrays, the solve path) and scalar (Python
    floats, the verify shadow); keeping a single definition is what makes
    the backends' float behaviour identical.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        on_complete: Any,
        model: "CpuModel",
        verify: bool = False,
    ) -> None:
        super().__init__(kernel, name, on_complete, verify=verify)
        self._model = model
        self.node = np.zeros(self.work.shape[0], dtype=np.int64)
        #: cached available power per host with resident steps (see
        #: NodeSlicedAllocator._power for the invalidation discipline)
        self._power: dict[int, float] = {}

    # ---------------------------------------------------------------- hooks
    def _rate_law(self, power, resident):
        """Per-step rate on a host with ``resident`` runnable steps.

        Must use only operations defined identically on floats and numpy
        arrays (it is called with both).
        """
        raise NotImplementedError

    def _grow_slots(self, old: int, new: int) -> None:
        node = np.zeros(new, dtype=np.int64)
        node[:old] = self.node
        self.node = node

    def _register(self, slot: int) -> None:
        self.node[slot] = self.tags[slot].node

    # ------------------------------------------------------------ rate solve
    def _assign_rates(self) -> int:
        """Vectorized full assignment; returns the number of rates written.

        Powers come from the cache (recomputed only for hosts the caller
        invalidated), group sizes from a bincount over the live host
        column.  Hosts that lost their last resident step are pruned from
        the power cache here, mirroring the scalar allocator.
        """
        live_idx = np.flatnonzero(self.live)
        if not live_idx.size:
            self._power.clear()
            return 0
        hosts = self.node[live_idx]
        uniq, inv = np.unique(hosts, return_inverse=True)
        resident = np.bincount(inv)
        power = np.empty(uniq.shape[0])
        for i, host in enumerate(uniq.tolist()):
            cached = self._power.get(host)
            if cached is None:
                cached = self._model._node_power(host)
                self._power[host] = cached
            power[i] = cached
        if len(self._power) > uniq.shape[0]:
            occupied = set(uniq.tolist())
            for host in [h for h in self._power if h not in occupied]:
                del self._power[host]
        self.rate[live_idx] = self._rate_law(power[inv], resident[inv])
        return int(live_idx.size)

    def _solve_update(self, added: list[int], removed: list[int]) -> None:
        # Recompute the dirty hosts' power rather than trusting the cache:
        # a transfer-completion callback can submit work before the
        # network's change notification arrives (see the matching comment
        # in NodeSlicedAllocator._update).
        for slot in added:
            self._power.pop(int(self.node[slot]), None)
        for slot in removed:
            self._power.pop(int(self.node[slot]), None)
        self.stats.rates_computed += self._assign_rates()

    def _solve_refresh(self, hint: Any) -> None:
        hosts = list(self._power) if hint is None else [int(h) for h in hint]
        moved = False
        for host in hosts:
            cached = self._power.get(host)
            if cached is None:
                continue  # no resident steps on this host
            power = self._model._node_power(host)
            if power != cached:
                self._power[host] = power
                moved = True
        if moved:
            self.stats.rates_computed += self._assign_rates()

    def _verify_full(self) -> None:
        live_idx = np.flatnonzero(self.live)
        resident: dict[int, int] = {}
        for host in self.node[live_idx].tolist():
            resident[host] = resident.get(host, 0) + 1
        fresh = {host: self._model._node_power(host) for host in resident}
        for slot in live_idx.tolist():
            host = int(self.node[slot])
            expected = self._rate_law(fresh[host], resident[host])
            got = float(self.rate[slot])
            scale = max(abs(expected), abs(got), 1.0)
            if abs(expected - got) > _VERIFY_RTOL * scale:
                raise SimulationError(
                    f"engine {self.name!r}: incremental rate diverged from "
                    f"the slice law on host {host}: "
                    f"incremental={got!r} full={expected!r}"
                )


class _SharedCpuSoaEngine(_CpuSoaEngine):
    """The paper's even-share law (shared.py's ``power / resident``)."""

    def _rate_law(self, power, resident):
        return power / resident


class _TimesliceCpuSoaEngine(_CpuSoaEngine):
    """timeslice.py's overhead-degraded law, same float op order."""

    def __init__(self, *args: Any, csw_overhead: float, **kw: Any) -> None:
        super().__init__(*args, **kw)
        self._csw = csw_overhead

    def _rate_law(self, power, resident):
        degraded = power / (1.0 + self._csw * (resident - 1))
        return degraded / resident


# --------------------------------------------------------------------------
# model front-ends
# --------------------------------------------------------------------------


class _SoaCpuModel(CpuModel):
    """Shared front-end plumbing of the SoA CPU models."""

    _pool: _CpuSoaEngine

    def submit(
        self,
        node: int,
        work: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> CpuTaskHandle:
        if work < 0.0:
            raise SimulationError(f"compute work must be >= 0, got {work!r}")
        handle = CpuTaskHandle(node, work, on_complete, tag)
        self._running[handle.node] = self._running.get(handle.node, 0) + 1
        self._pool.add(self._effective_work(handle), handle)
        return handle

    def _effective_work(self, handle: CpuTaskHandle) -> float:
        return handle.work

    def running_steps(self, node: int) -> int:
        return self._running.get(node, 0)

    def _step_done(self, handle: CpuTaskHandle) -> None:
        self._running[handle.node] -= 1
        self._record_completion(handle.node, handle.work)
        handle.on_complete(handle)

    def _on_network_change(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        self._pool.reallocate(hint=nodes)


class SharedCpuModelSoA(_SoaCpuModel):
    """SoA backend of :class:`~repro.cpumodel.shared.SharedCpuModel`.

    Same even-share law, same completion semantics and observability; the
    per-step state lives in numpy arrays instead of Python objects.
    ``verify_incremental=True`` shadows every solve with a from-scratch
    recomputation of the law.
    """

    def __init__(
        self,
        kernel: Kernel,
        comm_cost: CommCostModel | None = None,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, comm_cost)
        self._pool = _SharedCpuSoaEngine(
            kernel, "shared-cpu-soa", self._step_done, self,
            verify=verify_incremental,
        )
        #: allocator-protocol stats surface (``RunRecord`` model metrics)
        self.allocator = self._pool
        self._running: dict[int, int] = {}


class TimesliceCpuModelSoA(_SoaCpuModel):
    """SoA backend of :class:`~repro.cpumodel.timeslice.TimesliceCpuModel`.

    Replays the scalar model's seeded lognormal work inflation draw for
    draw (same RNG stream, same draw order), so the same seed produces the
    same testbed "measurements" on either backend.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: TimesliceParams | None = None,
        seed: int = 0,
        verify_incremental: bool = False,
    ) -> None:
        ts = params or TimesliceParams()
        super().__init__(kernel, _ConvexCommCost(ts))
        # Imported lazily-by-module: util.rng needs numpy, which the SoA
        # backend requires anyway.
        from repro.util.rng import SeedSequenceFactory

        self.params = ts
        self._rng = SeedSequenceFactory(seed).rng("timeslice-cpu")
        self._pool = _TimesliceCpuSoaEngine(
            kernel, "timeslice-cpu-soa", self._step_done, self,
            verify=verify_incremental, csw_overhead=ts.csw_overhead,
        )
        self.allocator = self._pool
        self._running: dict[int, int] = {}

    def _effective_work(self, handle: CpuTaskHandle) -> float:
        if self.params.noise_sigma > 0.0 and handle.work > 0.0:
            noise = float(
                self._rng.lognormal(mean=0.0, sigma=self.params.noise_sigma)
            )
            return handle.work * noise
        return handle.work
