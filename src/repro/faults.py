"""Deterministic failure injection: fault plans, kinds, and replay.

The paper's machinery handles *planned* resource loss — scripted
``RemoveThreads`` schedules that the DPS runtime migrates around.  This
module makes **unplanned** loss a first-class, declarative, deterministic
input.  A :class:`FaultPlan` describes node crashes, transient brown-outs,
degraded (slow) nodes and job kills as plain data; the cluster-server
engines replay it at their decision points, and the DPS engines compile
``crash`` faults into the same allocation schedule the scripted kills use.

Determinism contract (see ``docs/faults.md``):

* A plan is **seed-deterministic**: events may leave their target node
  unspecified (``node = -1``), in which case :meth:`FaultPlan.resolve`
  draws it from a stdlib :class:`random.Random` keyed by the plan seed and
  the event index — no numpy dependency, identical on every platform.
* Fault events are replayed **at epoch barriers** exactly like scheduler
  reallocations, so a sharded run's result (including the fault trace) is
  bit-identical for every shard count K.
* A crashed node's assignment is computed by a deterministic contiguous
  block rule over the sorted list of up nodes, in job-index order — pure
  controller-side integer arithmetic, identical across engines.

Semantics of a crash hitting a running job: the job loses its **current
phase** (work since the last phase boundary, counted in ``lost_work``) and
is re-dispatched by the scheduler under a bounded per-job retry budget
(``max_retries``); a job that exhausts the budget is failed and removed.
Restarting at the phase boundary keeps the post-fault state an exact
constant (the full phase work), which is what lets the eager and sharded
engines agree after a fault.

Fault kinds are registry-pluggable (``registry.register("fault", ...)``
with a :class:`FaultKind`): a custom kind validates its event and compiles
it to the same primitive timeline vocabulary (``down``/``up``/``slow``/
``unslow``/``kill``) the built-ins use, so the engines need no knowledge
of it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

#: The fault-event vocabulary: every event is one of these fields plus a
#: ``kind`` that gives them meaning.  Custom kinds reinterpret the same
#: fields rather than inventing new ones — that is what keeps the spec
#: section structurally validatable without a registry in scope.
_FLOAT_KEYS = ("at", "duration", "factor")
_INT_KEYS = ("node", "job", "after")
EVENT_KEYS = ("kind",) + _FLOAT_KEYS + _INT_KEYS

#: Primitive timeline operations the engines understand.
OP_DOWN = "down"        # arg: node index (node leaves the up-set)
OP_UP = "up"            # arg: node index (node returns)
OP_SLOW = "slow"        # arg: (node index, rate factor in (0, 1])
OP_UNSLOW = "unslow"    # arg: node index
OP_KILL = "kill"        # arg: job index


@dataclass(frozen=True)
class FaultEvent:
    """One declared fault: a kind plus the generic parameter fields.

    ``-1`` means "unset" for the integer fields (``node = -1`` on a
    node-targeting kind means *draw one deterministically from the plan
    seed*).  ``at`` is simulation time (server engines); ``after`` is a
    DPS phase index (``crash`` on the sim/testbed engines, following the
    apps' ``iter<k>`` labels).
    """

    kind: str
    at: float = -1.0
    node: int = -1
    job: int = -1
    duration: float = 0.0
    factor: float = 1.0
    after: int = -1

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict: ``kind`` plus every non-default field."""
        out: dict[str, Any] = {"kind": self.kind}
        defaults = _EVENT_DEFAULTS
        for key in _FLOAT_KEYS + _INT_KEYS:
            value = getattr(self, key)
            if value != defaults[key]:
                out[key] = value
        return out


_EVENT_DEFAULTS = {
    "at": -1.0, "node": -1, "job": -1,
    "duration": 0.0, "factor": 1.0, "after": -1,
}


def normalize_fault_event(raw: Any) -> dict[str, Any]:
    """Structurally validate and canonicalize one raw fault-event table.

    Registry-free (usable from spec parsing): checks the key vocabulary
    and coerces numeric types; per-kind semantic validation happens when
    the plan is built (:meth:`FaultPlan.from_section`).
    """
    if not isinstance(raw, Mapping):
        raise ConfigurationError(
            f"a fault event must be a table/dict, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - set(EVENT_KEYS))
    if unknown:
        raise ConfigurationError(
            f"unknown fault event keys {unknown}; valid keys: "
            f"{sorted(EVENT_KEYS)}"
        )
    kind = raw.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ConfigurationError(
            "a fault event needs a 'kind' name (string); e.g. "
            '{kind = "crash", node = 3, at = 120.0}'
        )
    out: dict[str, Any] = {"kind": kind}
    for key in _FLOAT_KEYS:
        if key in raw:
            value = raw[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"fault event field {key!r} must be a number, "
                    f"got {value!r}"
                )
            out[key] = float(value)
    for key in _INT_KEYS:
        if key in raw:
            value = raw[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"fault event field {key!r} must be an integer, "
                    f"got {value!r}"
                )
            out[key] = int(value)
    return out


def event_from_dict(payload: Any) -> FaultEvent:
    """A :class:`FaultEvent` from a raw event table (normalized first)."""
    return FaultEvent(**normalize_fault_event(payload))


# --------------------------------------------------------------------------
# fault kinds (the pluggable axis)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultKind:
    """One registrable fault kind: validation plus timeline compilation.

    Parameters
    ----------
    name:
        Registry name (``crash``, ``brownout``...).
    validate:
        ``event -> None``; raises :class:`ConfigurationError` on events
        that are structurally fine but semantically invalid for this kind.
    timeline:
        ``event -> sequence of (time, op, arg)`` primitive operations
        (:data:`OP_DOWN` and friends) for the cluster-server engines.
        May raise when the event only applies to DPS engines.
    targets_node:
        Whether ``node = -1`` should resolve to a seed-drawn node.
    description:
        One-line summary for ``repro scenarios list``.
    """

    name: str
    validate: Callable[[FaultEvent], None]
    timeline: Callable[[FaultEvent], Sequence[tuple]]
    targets_node: bool = False
    description: str = ""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigurationError(message)


def _validate_crash(ev: FaultEvent) -> None:
    _require(
        ev.at >= 0.0 or ev.after >= 0,
        "crash fault needs 'at' (server time) or 'after' (DPS phase index)",
    )


def _timeline_crash(ev: FaultEvent) -> Sequence[tuple]:
    _require(
        ev.at >= 0.0,
        "crash fault keyed by 'after' applies to the DPS engines only; "
        "give it 'at' (a simulation time) for the server engine",
    )
    return ((ev.at, OP_DOWN, ev.node),)


def _validate_brownout(ev: FaultEvent) -> None:
    _require(ev.at >= 0.0, "brownout fault needs 'at' (server time)")
    _require(ev.duration > 0.0, "brownout fault needs a positive 'duration'")


def _timeline_brownout(ev: FaultEvent) -> Sequence[tuple]:
    return ((ev.at, OP_DOWN, ev.node), (ev.at + ev.duration, OP_UP, ev.node))


def _validate_degrade(ev: FaultEvent) -> None:
    _require(ev.at >= 0.0, "degrade fault needs 'at' (server time)")
    _require(
        0.0 < ev.factor <= 1.0,
        f"degrade fault needs 'factor' in (0, 1], got {ev.factor!r}",
    )
    _require(ev.duration >= 0.0, "degrade 'duration' must be >= 0 (0: permanent)")


def _timeline_degrade(ev: FaultEvent) -> Sequence[tuple]:
    entries = [(ev.at, OP_SLOW, (ev.node, ev.factor))]
    if ev.duration > 0.0:
        entries.append((ev.at + ev.duration, OP_UNSLOW, ev.node))
    return entries


def _validate_killjob(ev: FaultEvent) -> None:
    _require(ev.at >= 0.0, "killjob fault needs 'at' (server time)")
    _require(ev.job >= 0, "killjob fault needs 'job' (a job index)")


def _timeline_killjob(ev: FaultEvent) -> Sequence[tuple]:
    return ((ev.at, OP_KILL, ev.job),)


#: The built-in fault kinds, keyed by name.  The default registry mirrors
#: these under kind ``"fault"``; spec-load-time validation falls back to
#: this table so a builtin kind's mistakes surface before any engine runs.
BUILTIN_FAULT_KINDS: dict[str, FaultKind] = {
    k.name: k
    for k in (
        FaultKind(
            name="crash",
            validate=_validate_crash,
            timeline=_timeline_crash,
            targets_node=True,
            description=(
                "node leaves permanently at time 'at' (server) or after "
                "phase 'after' (DPS RemoveThreads)"
            ),
        ),
        FaultKind(
            name="brownout",
            validate=_validate_brownout,
            timeline=_timeline_brownout,
            targets_node=True,
            description="node drops out at 'at' and returns 'duration' later",
        ),
        FaultKind(
            name="degrade",
            validate=_validate_degrade,
            timeline=_timeline_degrade,
            targets_node=True,
            description=(
                "node runs at rate 'factor' from 'at' for 'duration' "
                "(0: permanently)"
            ),
        ),
        FaultKind(
            name="killjob",
            validate=_validate_killjob,
            timeline=_timeline_killjob,
            description="job 'job' loses its current phase at time 'at'",
        ),
    )
}


def resolve_fault_kind(name: str, registry: Any = None) -> FaultKind:
    """Look a kind up in ``registry`` (kind ``"fault"``) or the built-ins."""
    if registry is not None:
        kind = registry.resolve("fault", name)
    else:
        try:
            kind = BUILTIN_FAULT_KINDS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown fault kind {name!r}; choose from "
                f"{sorted(BUILTIN_FAULT_KINDS)}"
            ) from None
    if not isinstance(kind, FaultKind):
        raise ConfigurationError(
            f"fault kind {name!r} must be a FaultKind, "
            f"got {type(kind).__name__}"
        )
    return kind


# --------------------------------------------------------------------------
# the plan
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seed-deterministic failure schedule.

    ``max_retries`` is the per-job restart budget: a job may lose its
    phase and be re-dispatched at most this many times before it is
    failed outright.  ``seed`` keys the deterministic resolution of
    unspecified (``-1``) target nodes.
    """

    events: tuple[FaultEvent, ...] = ()
    max_retries: int = 2
    seed: int = 0

    @classmethod
    def from_section(
        cls, section: Any, engine_seed: int, registry: Any = None
    ) -> "FaultPlan":
        """Build and kind-validate a plan from a spec's ``[faults]`` section.

        ``section.seed == -1`` (the default) inherits ``engine_seed`` so a
        spec's single seed governs workload and faults alike.
        """
        events = []
        for payload in section.events:
            ev = event_from_dict(payload)
            resolve_fault_kind(ev.kind, registry).validate(ev)
            events.append(ev)
        seed = section.seed if section.seed >= 0 else engine_seed
        return cls(
            events=tuple(events),
            max_retries=section.max_retries,
            seed=seed,
        )

    def resolve(self, total_nodes: int, registry: Any = None) -> "FaultPlan":
        """Draw every unspecified target node deterministically.

        Event ``i`` with ``node = -1`` on a node-targeting kind receives
        ``random.Random(f"{seed}:{i}:{kind}").randrange(total_nodes)`` —
        stdlib-deterministic, so the resolved plan (and hence the fault
        trace) is a pure function of (plan, total_nodes).
        """
        if total_nodes < 1:
            raise ConfigurationError("total_nodes must be >= 1")
        resolved = []
        for i, ev in enumerate(self.events):
            kind = resolve_fault_kind(ev.kind, registry)
            node = ev.node
            if kind.targets_node:
                if node == -1:
                    node = random.Random(
                        f"{self.seed}:{i}:{ev.kind}"
                    ).randrange(total_nodes)
                elif not 0 <= node < total_nodes:
                    raise ConfigurationError(
                        f"fault event {i} targets node {node}, but the "
                        f"cluster has nodes 0..{total_nodes - 1}"
                    )
            resolved.append(
                ev if node == ev.node
                else FaultEvent(
                    kind=ev.kind, at=ev.at, node=node, job=ev.job,
                    duration=ev.duration, factor=ev.factor, after=ev.after,
                )
            )
        return FaultPlan(
            events=tuple(resolved),
            max_retries=self.max_retries,
            seed=self.seed,
        )

    def compile(
        self, total_nodes: int, registry: Any = None
    ) -> "CompiledFaultPlan":
        """Resolve targets and flatten the plan into a primitive timeline."""
        if self.max_retries < 0:
            raise ConfigurationError("faults.max_retries must be >= 0")
        plan = self.resolve(total_nodes, registry)
        entries = []
        for ev in plan.events:
            kind = resolve_fault_kind(ev.kind, registry)
            kind.validate(ev)
            for t, op, arg in kind.timeline(ev):
                if t < 0.0:
                    raise ConfigurationError(
                        f"fault kind {ev.kind!r} produced a negative "
                        f"timeline entry at t={t!r}"
                    )
                entries.append((t, len(entries), op, arg))
        entries.sort()
        return CompiledFaultPlan(
            total_nodes=total_nodes,
            max_retries=plan.max_retries,
            entries=tuple(entries),
            events=plan.events,
        )


@dataclass(frozen=True)
class CompiledFaultPlan:
    """A resolved plan flattened to sorted ``(t, seq, op, arg)`` entries.

    Stateless and reusable: each engine run builds a fresh
    :class:`FaultRuntime` around it.  ``total_nodes`` records the cluster
    size the targets were resolved against; the engines refuse a mismatch.
    """

    total_nodes: int
    max_retries: int
    entries: tuple[tuple, ...] = ()
    events: tuple[FaultEvent, ...] = ()


def compile_dps_removals(
    plan: FaultPlan, num_nodes: int, num_threads: int,
    node_of_worker: Optional[Callable[[int], int]] = None,
    registry: Any = None,
):
    """Compile ``crash`` faults into DPS ``RemoveThreads`` events.

    A ``crash`` with an ``after`` phase index maps to removing every
    worker thread deployed on the crashed node (the apps' round-robin
    ``thread % num_nodes`` placement unless ``node_of_worker`` says
    otherwise) after ``iter<after>`` — exactly the shape of the paper's
    scripted kill events, so the malleability machinery (migration
    planning, dynamic-efficiency accounting) applies unchanged.
    """
    from repro.dps.malleability import AllocationEvent

    resolved = plan.resolve(num_nodes, registry)
    node_of = node_of_worker or (lambda t: t % num_nodes)
    events = []
    for i, ev in enumerate(resolved.events):
        if ev.kind != "crash":
            raise ConfigurationError(
                f"the DPS engines honor only 'crash' faults; fault event "
                f"{i} has kind {ev.kind!r} (run it on the 'server' engine)"
            )
        if ev.after < 0:
            raise ConfigurationError(
                f"crash fault event {i} needs 'after' (a phase index) for "
                "the DPS engines; 'at' applies to the server engine"
            )
        threads = tuple(
            t for t in range(num_threads) if node_of(t) == ev.node
        )
        if not threads:
            raise ConfigurationError(
                f"crash fault event {i}: no worker threads are deployed "
                f"on node {ev.node}"
            )
        events.append(AllocationEvent(f"iter{ev.after}", "workers", threads))
    return tuple(events)


# --------------------------------------------------------------------------
# the runtime (shared by the eager and sharded cluster-server engines)
# --------------------------------------------------------------------------


class FaultRuntime:
    """Replays a compiled plan against one engine run.

    Owns the node up-set, the degraded-node factors, the per-job retry
    budget and the fault trace.  Both cluster-server engines drive it with
    the same call sequence at their decision points, and everything in
    here is plain controller-side arithmetic — no shard or kernel state —
    which is what keeps fault replay bit-identical for every shard count.
    """

    def __init__(self, compiled: CompiledFaultPlan, total_nodes: int) -> None:
        if compiled.total_nodes != total_nodes:
            raise ConfigurationError(
                f"fault plan was compiled for {compiled.total_nodes} nodes "
                f"but the cluster has {total_nodes}"
            )
        self.total_nodes = total_nodes
        self.max_retries = compiled.max_retries
        self._timeline: deque = deque(compiled.entries)
        #: nodes currently out of service
        self.down: set[int] = set()
        #: node -> rate factor of currently degraded nodes
        self.slow: dict[int, float] = {}
        #: total job restarts granted
        self.retries = 0
        #: work units lost to restarts (partial phases thrown away)
        self.lost_work = 0.0
        #: jobs failed after exhausting the retry budget
        self.failed_jobs = 0
        #: applied fault operations, in replay order (JSON-clean dicts)
        self.trace: list[dict] = []
        self._job_restarts: dict[int, int] = {}
        self._ever_slowed = False

    # ------------------------------------------------------------- queries
    def next_time(self) -> Optional[float]:
        """Earliest pending fault time — the engines' lookahead bound."""
        return self._timeline[0][0] if self._timeline else None

    def capacity(self, total_nodes: int) -> int:
        """Effective node count after outages."""
        return total_nodes - len(self.down)

    @property
    def factors_live(self) -> bool:
        """Whether per-job rate factors must be (re)computed.

        Stays False until the first degrade fires, so fault plans without
        degrades never pay the per-allocation factor pass.
        """
        return self._ever_slowed

    # ------------------------------------------------------------ assignment
    def _up_nodes(self) -> list[int]:
        return [n for n in range(self.total_nodes) if n not in self.down]

    def _holder(
        self, node: int, ordered: Sequence[tuple[int, int]]
    ) -> int:
        """The job holding ``node`` under the contiguous-block rule.

        ``ordered`` is the running set as sorted ``(job index, nodes)``
        pairs; running jobs take contiguous blocks of the sorted up-node
        list in index order.  Returns -1 when the node is unassigned.
        """
        up = self._up_nodes()
        pos = 0
        for idx, nodes in ordered:
            if nodes > 0:
                if node in up[pos:pos + nodes]:
                    return idx
                pos += nodes
        return -1

    def rate_factors(
        self, ordered: Sequence[tuple[int, int]]
    ) -> dict[int, float]:
        """Per-job rate factors under the current degraded-node set.

        Same contiguous-block assignment as :meth:`_holder`; a job's
        factor is the mean of its nodes' factors (degraded nodes
        contribute ``slow[node]``, healthy ones 1.0).  Pure float
        arithmetic in a fixed order — engine- and K-independent.
        """
        factors: dict[int, float] = {}
        up = self._up_nodes()
        pos = 0
        for idx, nodes in ordered:
            if nodes <= 0:
                factors[idx] = 1.0
                continue
            total = 0.0
            for node in up[pos:pos + nodes]:
                total += self.slow.get(node, 1.0)
            pos += nodes
            factors[idx] = total / nodes
        return factors

    # --------------------------------------------------------------- replay
    def fire(
        self, now: float, ordered: Sequence[tuple[int, int]]
    ) -> tuple[bool, list[tuple[int, dict]]]:
        """Apply every fault due at or before ``now``.

        ``ordered`` is the running set as sorted ``(job index, nodes)``
        pairs *before* any fault of this batch is applied — both engines
        replay the whole batch against the same pre-fault grants.
        Returns ``(fired, victims)``: whether anything fired, and the
        victim job indices with their (mutable) trace entries, in firing
        order.  The caller settles each victim via :meth:`record_loss`.
        """
        fired = False
        victims: list[tuple[int, dict]] = []
        while self._timeline and self._timeline[0][0] <= now:
            t, _seq, op, arg = self._timeline.popleft()
            fired = True
            entry: dict[str, Any] = {"t": t, "op": op}
            if op == OP_DOWN:
                entry["node"] = arg
                if arg in self.down:
                    entry["outcome"] = "noop"
                else:
                    victim = self._holder(arg, ordered)
                    self.down.add(arg)
                    if len(self.down) >= self.total_nodes:
                        raise ConfigurationError(
                            "fault plan takes every node down at "
                            f"t={t}; the workload cannot finish"
                        )
                    entry["job"] = victim
                    if victim >= 0:
                        victims.append((victim, entry))
                    else:
                        entry["outcome"] = "idle"
            elif op == OP_UP:
                entry["node"] = arg
                self.down.discard(arg)
            elif op == OP_SLOW:
                node, factor = arg
                entry["node"] = node
                entry["factor"] = factor
                self.slow[node] = factor
                self._ever_slowed = True
            elif op == OP_UNSLOW:
                entry["node"] = arg
                self.slow.pop(arg, None)
            elif op == OP_KILL:
                entry["job"] = arg
                if any(idx == arg for idx, _nodes in ordered):
                    victims.append((arg, entry))
                else:
                    entry["outcome"] = "absent"
            else:  # pragma: no cover - compile() emits known ops only
                raise ConfigurationError(f"unknown fault op {op!r}")
            self.trace.append(entry)
        return fired, victims

    def record_loss(self, idx: int, lost: float, entry: dict) -> str:
        """Account one victim's lost phase; decide retry vs. fail.

        ``lost`` is the work discarded (progress into the current phase,
        computed by the engine).  Returns ``"retry"`` while the job's
        budget lasts, ``"fail"`` once exhausted.
        """
        self.lost_work += lost
        n = self._job_restarts.get(idx, 0) + 1
        self._job_restarts[idx] = n
        entry["lost"] = lost
        entry["restarts"] = n
        if n > self.max_retries:
            self.failed_jobs += 1
            entry["outcome"] = "failed"
            return "fail"
        self.retries += 1
        entry["outcome"] = "retry"
        return "retry"
