"""Application protocol: what the simulator and testbed need from an app.

"Since the simulation library is integrated into DPS, the simulated
application is obtained by simply activating a compilation flag.  The real
and simulated applications may thus be run identically" — paper, section 3.
Here the equivalent contract is an object that can build its flow graph,
deployment and initial data objects; both execution engines consume it
unchanged.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.malleability import MigrationPlanner
from repro.dps.runtime import Runtime


@runtime_checkable
class Application(Protocol):
    """A DPS application runnable under any execution engine."""

    def build_graph(self) -> FlowGraph:
        """Construct the application's flow graph (fresh per run)."""
        ...

    def build_deployment(self) -> Deployment:
        """Construct the thread-group to node mapping."""
        ...

    def bootstrap(self, runtime: Runtime) -> None:
        """Inject the initial data objects into the runtime."""
        ...

    def migration_planner(self) -> Optional[MigrationPlanner]:
        """State-migration policy for dynamic allocation (None: default)."""
        ...
