"""Cost specifications of the LU kernels and their benchmarked calibration.

Flop counts follow the standard dense-linear-algebra accounting (Golub &
van Loan):

* panel getrf of an ``m x r`` panel: ``m r^2 - r^3/3`` flops,
* triangular solve of ``r`` right-hand sides: ``r^3`` flops,
* block product ``r x r``: ``2 r^3`` flops,
* trailing subtraction: ``r^2`` flops (one per element),
* row exchanges: pure data movement, modelled as ``swap_cost_per_byte``
  flop-equivalents per byte moved.

:func:`benchmark_rate_factors` reproduces the paper's "benchmarked times"
workflow: it measures each kernel a few times **on the ground-truth
machine** (with its systematic biases and noise) and fits per-kernel rate
factors for the simulator's cost model.  The fit inherits a small residual
error — the honest mechanism behind the paper's few-percent prediction
errors.
"""

from __future__ import annotations

from typing import Mapping, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.cpumodel.machines import MachineProfile
from repro.dps.operations import KernelSpec
from repro.sim.providers import MachineCostModel
from repro.testbed.noise import DEFAULT_KERNEL_BIAS, KernelBias, NoisySampler

#: flop-equivalents charged per byte moved by a row exchange
SWAP_COST_PER_BYTE = 0.25
#: flop-equivalents charged for handling one control data object in a
#: split/merge/stream body (queue management, bookkeeping)
HANDLING_FLOPS = 2500.0


# --------------------------------------------------------------------------
# kernel specs
# --------------------------------------------------------------------------


def panel_lu_spec(m: int, r: int) -> KernelSpec:
    """Panel factorization of an ``m x r`` panel."""
    flops = m * r * r - r**3 / 3.0
    return KernelSpec(
        "panel_lu",
        flops=max(flops, 0.0),
        working_set=8.0 * m * r,
        params={"m": m, "r": r},
    )


def trsm_spec(r: int) -> KernelSpec:
    """Triangular solve producing one ``r x r`` T12 block."""
    return KernelSpec(
        "trsm", flops=float(r) ** 3, working_set=2.0 * 8.0 * r * r, params={"r": r}
    )


def gemm_spec(r: int) -> KernelSpec:
    """One ``r x r`` block multiplication."""
    return KernelSpec(
        "gemm", flops=2.0 * float(r) ** 3, working_set=3.0 * 8.0 * r * r, params={"r": r}
    )


def sub_gemm_spec(s: int, r: int) -> KernelSpec:
    """One ``s x r`` by ``r x s`` sub-block product (PM variant)."""
    return KernelSpec(
        "gemm",
        flops=2.0 * s * s * r,
        working_set=8.0 * (2.0 * s * r + s * s),
        params={"r": r, "s": s},
    )


def sub_spec(r: int) -> KernelSpec:
    """Trailing subtraction of one ``r x r`` block."""
    return KernelSpec(
        "sub", flops=float(r) * r, working_set=2.0 * 8.0 * r * r, params={"r": r}
    )


def rowswap_spec(rows_moved: int, r: int) -> KernelSpec:
    """Row exchanges moving ``rows_moved`` rows of width ``r``."""
    bytes_moved = 2.0 * 8.0 * rows_moved * r
    return KernelSpec(
        "rowswap",
        flops=SWAP_COST_PER_BYTE * bytes_moved,
        working_set=bytes_moved,
        params={"r": r},
    )


def handling_spec(objects: int = 1) -> KernelSpec:
    """Framework handling cost for ``objects`` control data objects."""
    return KernelSpec("overhead", flops=HANDLING_FLOPS * objects, working_set=4096.0)


def lu_total_flops(n: int, r: int) -> float:
    """Total flops of the blocked factorization (all kernels, all levels)."""
    nb = n // r
    total = 0.0
    for k in range(nb):
        m = n - k * r
        mk = nb - 1 - k
        total += m * r * r - r**3 / 3.0  # panel
        total += mk * float(r) ** 3  # trsm
        total += mk * mk * 2.0 * float(r) ** 3  # gemm
        total += mk * mk * float(r) * r  # sub
    return total


# --------------------------------------------------------------------------
# calibration against the ground truth ("benchmarked times")
# --------------------------------------------------------------------------


def benchmark_rate_factors(
    machine: MachineProfile,
    r: int,
    bias: Optional[KernelBias] = None,
    samples: int = 5,
    seed: int = 1,
) -> dict[str, float]:
    """Fit per-kernel rate factors by benchmarking the ground truth.

    For each LU kernel, draw ``samples`` noisy ground-truth timings at
    block size ``r`` and return ``mean(measured) / model`` — the
    calibration a user of the paper's system obtains by timing kernels on
    the target machine before simulating.  The residual (finite-sample
    noise plus any granularity mismatch) is what limits prediction
    accuracy.
    """
    bias = bias or DEFAULT_KERNEL_BIAS
    sampler = NoisySampler(seed, bias.sigma)
    specs = {
        "panel_lu": panel_lu_spec(4 * r, r),
        "trsm": trsm_spec(r),
        "gemm": gemm_spec(r),
        "sub": sub_spec(r),
        "rowswap": rowswap_spec(r, r),
        "overhead": handling_spec(),
    }
    factors: dict[str, float] = {}
    for name, spec in specs.items():
        model = machine.seconds_for(spec.flops, spec.working_set)
        if model <= 0.0:
            factors[name] = 1.0
            continue
        measured = [
            model * bias.factor(name) * sampler.sample() for _ in range(samples)
        ]
        factors[name] = float(np.mean(measured)) / model
    return factors


class LUCostModel(MachineCostModel):
    """The LU application's PDEXEC cost model.

    A :class:`MachineCostModel` whose per-kernel rate factors come from
    :func:`benchmark_rate_factors` — i.e. calibrated the way the paper
    calibrates, by timing kernels once per target machine.
    """

    def __init__(
        self,
        machine: MachineProfile,
        r: int,
        bias: Optional[KernelBias] = None,
        samples: int = 5,
        seed: int = 1,
        rate_factors: Optional[Mapping[str, float]] = None,
    ) -> None:
        if rate_factors is None:
            rate_factors = benchmark_rate_factors(
                machine, r, bias=bias, samples=samples, seed=seed
            )
        super().__init__(machine, rate_factors=rate_factors)
        self.r = r
