"""Configuration of the parallel block LU application."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.dps.malleability import STATIC, AllocationSchedule
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode


@dataclass(frozen=True)
class LUConfig:
    """One parallel LU run: matrix, decomposition, deployment, variant.

    Parameters
    ----------
    n:
        Matrix dimension (``n x n`` doubles).
    r:
        Decomposition block size; must divide ``n``.  The paper sweeps
        r in {81, 108, 162, 216, 324, 648} for n = 2592.
    num_threads:
        Number of worker DPS threads ``P``; column block ``j`` is owned by
        thread ``j % P`` (column-block distribution of section 5).
    num_nodes:
        Compute nodes; worker thread ``t`` lives on node ``t %
        num_nodes``.
    pipelined:
        Use stream operations (the **P** variant, Fig. 5) instead of
        barrier merge-split pairs (the *basic* flow graph).
    flow_control:
        Credit limit on in-flight multiplication requests per iteration
        (the **FC** variant); ``None`` disables flow control.
    pm_subblock:
        Sub-block size ``s`` for parallel sub-block multiplications (the
        **PM** variant, Fig. 7); ``None`` keeps whole-block
        multiplications.  Must divide ``r``.
    schedule:
        Dynamic-allocation strategy (thread removals at iteration ends).
    mode:
        Payload/duration handling (direct, PDEXEC, PDEXEC+NOALLOC).
    matrix_seed:
        Seed of the random test matrix (when payloads are allocated).
    """

    n: int = 2592
    r: int = 324
    num_threads: int = 4
    num_nodes: int = 4
    pipelined: bool = False
    flow_control: Optional[int] = None
    pm_subblock: Optional[int] = None
    schedule: AllocationSchedule = field(default_factory=lambda: STATIC)
    mode: SimulationMode = SimulationMode.PDEXEC_NOALLOC
    matrix_seed: int = 7

    def __post_init__(self) -> None:
        if self.n < 1 or self.r < 1:
            raise ConfigurationError("n and r must be positive")
        if self.n % self.r != 0:
            raise ConfigurationError(
                f"block size r={self.r} must divide matrix size n={self.n}"
            )
        if self.num_threads < 1 or self.num_nodes < 1:
            raise ConfigurationError("num_threads and num_nodes must be positive")
        if self.num_threads < self.num_nodes:
            raise ConfigurationError(
                "each node must host at least one worker thread "
                f"(num_threads={self.num_threads} < num_nodes={self.num_nodes})"
            )
        if self.flow_control is not None and self.flow_control < 1:
            raise ConfigurationError("flow_control must be >= 1 or None")
        if self.pm_subblock is not None:
            if self.r % self.pm_subblock != 0:
                raise ConfigurationError(
                    f"pm_subblock s={self.pm_subblock} must divide r={self.r}"
                )
            if self.pm_subblock == self.r:
                raise ConfigurationError(
                    "pm_subblock must be strictly smaller than r"
                )

    # ------------------------------------------------------------- derived
    @property
    def nb(self) -> int:
        """Number of column blocks (and LU iterations)."""
        return self.n // self.r

    @property
    def variant_name(self) -> str:
        """Paper-style variant label: basic, P, P+FC, PM, P+PM+FC, ..."""
        parts = []
        if self.pipelined:
            parts.append("P")
        if self.pm_subblock is not None:
            parts.append("PM")
        if self.flow_control is not None:
            parts.append("FC")
        return "+".join(parts) if parts else "basic"

    def node_of_worker(self, t: int) -> int:
        """Deployment formula: worker thread ``t`` lives on this node."""
        return t % self.num_nodes

    def with_variant(
        self,
        pipelined: Optional[bool] = None,
        flow_control: Optional[int] | str = "keep",
        pm_subblock: Optional[int] | str = "keep",
    ) -> "LUConfig":
        """Copy with different variant switches (sweep helper)."""
        changes = {}
        if pipelined is not None:
            changes["pipelined"] = pipelined
        if flow_control != "keep":
            changes["flow_control"] = flow_control
        if pm_subblock != "keep":
            changes["pm_subblock"] = pm_subblock
        return replace(self, **changes)
