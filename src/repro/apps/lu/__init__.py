"""Parallel block LU factorization — the paper's test application.

The matrix is distributed in column blocks of size ``r x n`` onto DPS
threads (section 5); each LU level factors the panel, solves triangular
systems in parallel, updates the trailing matrix with block
multiplications, and optionally removes threads as the work per iteration
shrinks (section 6).

Variants (paper section 6):

* **basic** — merge+split barriers between phases, no pipelining,
* **P** (pipelined) — stream operations start the next level as soon as
  its column block is ready,
* **FC** — flow control caps in-flight multiplication requests,
* **PM** — block multiplications decomposed into sub-block products
  distributed over all threads (Fig. 7).
"""

from repro.apps.lu.app import LUApplication, LUConfig
from repro.apps.lu.blockmath import (
    gemm_update,
    panel_lu,
    sequential_block_lu,
    trsm_block,
    verify_factorization,
)
from repro.apps.lu.costs import LUCostModel, benchmark_rate_factors, lu_total_flops

__all__ = [
    "LUApplication",
    "LUConfig",
    "panel_lu",
    "trsm_block",
    "gemm_update",
    "sequential_block_lu",
    "verify_factorization",
    "LUCostModel",
    "benchmark_rate_factors",
    "lu_total_flops",
]
