"""Flow graphs of the parallel block LU factorization (paper Figs. 5-7).

Vertex layout, one gray section per LU level ``k`` (paper Fig. 5):

* ``dispatch@k``  — (f) collect end-of-update notifications of level k-1,
  trigger the level-k panel factorization ("perform next level LU as soon
  as first column block is complete" in pipelined mode; after a full
  barrier in basic mode), and forward column-ready events;
* ``lu@k``        — (a) panel factorization at the owner of column k;
* ``tdisp@k``     — joins the panel with column-ready events and streams
  out triangular-solve requests ("stream out triangular system solve
  requests as other column blocks complete");
* ``trsm@k``      — (b) parallel triangular solves + row flipping;
* ``c@k``         — (c) collect T12 notifications, stream out
  multiplication requests (flow control attaches here);
* ``mult@k``      — (d) block multiplications, distributed evenly; the PM
  variant replaces this leaf by the Fig. 7 subgraph;
* ``sub@k``       — (e) subtract products from the trailing columns;
* ``rowflip@k``   — (g) row flipping on previous column blocks;
* ``sink``        — (h) collect row-exchange/termination notifications.

Thread groups: ``main`` (one thread, node 0) runs the initial distribution
and the sink; ``control`` (one thread per node) hosts the collect/dispatch
streams so they overlap with computation on the same node ("allowing for
example a merge operation to receive and process data objects while a leaf
operation is running on the same processor"); ``workers`` own the column
blocks (block ``j`` on thread ``j % P``).
"""

from __future__ import annotations

from typing import Any, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.apps.lu.blockmath import (
    apply_pivots,
    panel_lu,
    trsm_block,
)
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import (
    gemm_spec,
    handling_spec,
    panel_lu_spec,
    rowswap_spec,
    sub_gemm_spec,
    sub_spec,
    trsm_spec,
    SWAP_COST_PER_BYTE,
)
from repro.dps.data_objects import DataObject
from repro.dps.flowgraph import FlowGraph
from repro.dps.malleability import AllocationEvent
from repro.dps.operations import (
    Compute,
    KernelSpec,
    LeafOperation,
    MergeOperation,
    Post,
    RemoveThreads,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Constant, Modulo


def store_spec(nbytes: float) -> KernelSpec:
    """Memcpy-like cost of storing ``nbytes`` of payload."""
    return KernelSpec(
        "store", flops=SWAP_COST_PER_BYTE * nbytes, working_set=nbytes
    )


class LUShared:
    """Run-wide constants and helpers shared by all LU operations."""

    def __init__(self, cfg: LUConfig, matrix: Optional[np.ndarray]) -> None:
        self.cfg = cfg
        self.matrix = matrix
        self.alloc = matrix is not None
        n, r = cfg.n, cfg.r
        self.block_bytes = 8.0 * n * r
        self.panel_bytes = 8.0 * r * r + 4.0 * r
        self.t12_bytes = 8.0 * r * r
        self.mult_req_bytes = 2.0 * 8.0 * r * r
        self.mult_res_bytes = 8.0 * r * r
        self.piv_bytes = 4.0 * r
        # Allocation events keyed by the 0-based level whose dispatch
        # executes them ("kill after iteration i" fires in dispatch@i).
        self.events: dict[int, list[AllocationEvent]] = {}
        for k in range(cfg.nb):
            evs = cfg.schedule.removals_after(f"iter{k}")
            if evs:
                self.events[k] = evs

    def l21_bytes(self, k: int) -> float:
        """Wire size of the L21 blocks below the level-k diagonal."""
        rows = self.cfg.n - (k + 1) * self.cfg.r
        return 8.0 * rows * self.cfg.r

    def control_route(self, worker_index: int) -> int:
        """Control-thread index co-located with ``worker_index``."""
        return self.cfg.node_of_worker(worker_index)

    def planned_workers(self, k: int) -> int:
        """Live worker count while iteration ``k`` executes.

        Scheduled removals for "after iteration j" run inside
        ``dispatch@j`` before iteration ``j``'s panel factorization, so
        they are in force from iteration ``j`` onward.  Removal schedules
        must drop the highest thread indices (as the paper's strategies
        do) so survivors are exactly ``0..P'-1``.
        """
        removed = sum(
            len(e.thread_indices)
            for kk in range(k + 1)
            for e in self.events.get(kk, [])
        )
        return self.cfg.num_threads - removed

    def dispatch_home(self, k: int) -> int:
        """Control-thread index hosting dispatch@k / tdisp@k / c@k.

        Computed against the allocation iteration ``k`` will run under —
        posting with the pre-removal owner would route the dispatch
        instance onto a control thread it is about to remove.
        """
        return self.cfg.node_of_worker(k % self.planned_workers(k))

    def sink_expected(self) -> int:
        """Total notifications the termination sink collects."""
        nb = self.cfg.nb
        return 1 + nb * (nb - 1) // 2  # AllDone + one FlipDone per flip


# --------------------------------------------------------------------------
# operations
# --------------------------------------------------------------------------


class InitSplit(SplitOperation):
    """Distribute the matrix in column blocks onto the worker threads."""

    def __init__(self, shared: LUShared) -> None:
        self.shared = shared

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        for j in range(cfg.nb):
            payload = None
            if self.shared.alloc:
                payload = self.shared.matrix[:, j * cfg.r : (j + 1) * cfg.r].copy()
            yield Compute(store_spec(self.shared.block_bytes), None)
            yield Post(
                DataObject(
                    "column_block",
                    payload=payload,
                    meta={"col": j},
                    declared_size=self.shared.block_bytes,
                ),
                to="store",
            )


class StoreBlock(LeafOperation):
    """Store a column block in the owner thread's state (operation init)."""

    def __init__(self, shared: LUShared) -> None:
        self.shared = shared

    def run(self, ctx, obj):
        j = obj.get("col")
        yield Compute(store_spec(self.shared.block_bytes), None)
        ctx.thread_state[("block", j)] = obj.payload
        # All readiness notifications converge on dispatch@0's single
        # instance, which lives at the control thread of column 0's owner.
        yield Post(
            DataObject("column_ready", meta={"col": j}, declared_size=0.0),
            to="dispatch@0",
            route=self.shared.dispatch_home(0),
        )


class DispatchState:
    """Mutable accumulator of a dispatch stream instance."""

    __slots__ = ("col_counts", "done_cols", "lugo_sent", "forwarded")

    def __init__(self) -> None:
        self.col_counts: dict[int, int] = {}
        self.done_cols: set[int] = set()
        self.lugo_sent = False
        self.forwarded: set[int] = set()


class Dispatch(StreamOperation):
    """(f) of Fig. 5: trigger level k and forward column readiness.

    Receives one notification per trailing-update completion of level k-1
    (or the initial store notifications for k = 0).  In pipelined mode it
    posts ``LuGo`` the moment column k is complete and forwards other
    columns as they finish; in basic mode it acts as a barrier.  Scheduled
    thread removals execute here, right before ``LuGo`` — the paper's
    "removing threads after iteration k".
    """

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k
        nb = shared.cfg.nb
        self.expected_per_col = 1 if k == 0 else nb - k
        self.total_cols = nb - k  # columns k..nb-1

    def instance_key(self, obj: DataObject) -> Any:
        return self.k

    def initial_state(self, ctx) -> DispatchState:
        return DispatchState()

    def combine(self, ctx, state: DispatchState, obj: DataObject):
        yield Compute(handling_spec(), None)
        j = obj.get("col")
        state.col_counts[j] = state.col_counts.get(j, 0) + 1
        if state.col_counts[j] == self.expected_per_col:
            state.done_cols.add(j)
            if self.shared.cfg.pipelined:
                if j == self.k:
                    yield from self._emit_lugo(ctx, state)
                else:
                    yield from self._forward(ctx, state, j)
            elif len(state.done_cols) == self.total_cols:
                yield from self._emit_lugo(ctx, state)
                for col in sorted(state.done_cols):
                    if col != self.k:
                        yield from self._forward(ctx, state, col)
        if state.lugo_sent and len(state.forwarded) == self.total_cols - 1:
            ctx.finish_instance()

    def _emit_lugo(self, ctx, state: DispatchState):
        for event in self.shared.events.get(self.k, []):
            yield Compute(handling_spec(), None)
            yield RemoveThreads(event.group, event.thread_indices)
            emptied = self._emptied_nodes(ctx, event)
            if emptied:
                yield RemoveThreads("control", sorted(emptied))
        state.lugo_sent = True
        yield Post(
            DataObject("lu_go", meta={"col": self.k}, declared_size=0.0),
            to=f"lu@{self.k}",
        )

    def _emptied_nodes(self, ctx, event: AllocationEvent) -> set[int]:
        cfg = self.shared.cfg
        occupied = {
            cfg.node_of_worker(w) for w in ctx.live_indices("workers")
        }
        removed_nodes = {cfg.node_of_worker(w) for w in event.thread_indices}
        # Node 0 hosts the main thread and can never be deallocated.
        return (removed_nodes - occupied) - {0}

    def _forward(self, ctx, state: DispatchState, j: int):
        state.forwarded.add(j)
        yield Post(
            DataObject("column_ready", meta={"col": j}, declared_size=0.0),
            to=f"tdisp@{self.k}",
            route=self.shared.control_route(self.k % ctx.group_size("workers")),
        )


class TrsmDispatchState:
    """Accumulator of the trsm-dispatch stream: the factored panel plus
    the column blocks waiting for it."""

    __slots__ = ("panel", "have_panel", "ready", "sent")

    def __init__(self) -> None:
        self.panel: Any = None
        self.have_panel = False
        self.ready: list[int] = []
        self.sent = 0


class TrsmDispatch(StreamOperation):
    """Join the level-k panel with column readiness; emit solve requests."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k
        self.expected_readys = shared.cfg.nb - 1 - k

    def instance_key(self, obj: DataObject) -> Any:
        return self.k

    def initial_state(self, ctx) -> TrsmDispatchState:
        return TrsmDispatchState()

    def combine(self, ctx, state: TrsmDispatchState, obj: DataObject):
        yield Compute(handling_spec(), None)
        if obj.kind == "panel_ready":
            state.panel = obj.payload
            state.have_panel = True
            pending, state.ready = state.ready, []
            for j in pending:
                yield from self._emit(ctx, state, j)
        else:
            j = obj.get("col")
            if state.have_panel:
                yield from self._emit(ctx, state, j)
            else:
                state.ready.append(j)
        if state.have_panel and state.sent == self.expected_readys:
            ctx.finish_instance()

    def _emit(self, ctx, state: TrsmDispatchState, j: int):
        state.sent += 1
        yield Post(
            DataObject(
                "trsm_go",
                payload=state.panel,
                meta={"col": j, "iter": self.k},
                declared_size=self.shared.panel_bytes,
            ),
            to=f"trsm@{self.k}",
        )


class LUPanel(LeafOperation):
    """(a) of Fig. 5: factor the level-k panel with partial pivoting."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        k, r, n, nb = self.k, cfg.r, cfg.n, cfg.nb
        ctx.mark_phase(f"iter{k + 1}")
        block = ctx.thread_state.get(("block", k))
        m = n - k * r

        def kernel():
            panel = block[k * r :, :]
            packed, piv = panel_lu(panel)
            block[k * r :, :] = packed
            return packed, piv

        result = yield Compute(
            panel_lu_spec(m, r), kernel if block is not None else None
        )
        packed, piv = result if result is not None else (None, None)
        if piv is not None:
            ctx.thread_state[("piv", k)] = piv
        # (g) row flipping on previous column blocks.
        for j in range(k):
            yield Post(
                DataObject(
                    "rowflip",
                    payload=piv,
                    meta={"col": j, "iter": k},
                    declared_size=self.shared.piv_bytes,
                ),
                to=f"rowflip@{k}",
            )
        if k == nb - 1:
            yield Post(
                DataObject("all_done", meta={"iter": k}, declared_size=0.0),
                to="sink",
            )
            return
        # L21 blocks to the request stream (local: same node).
        l21 = None
        if packed is not None:
            l21 = {
                i: packed[(i - k) * r : (i - k + 1) * r, :].copy()
                for i in range(k + 1, nb)
            }
        ctrl = self.shared.control_route(ctx.thread_index)
        yield Post(
            DataObject(
                "panel_for_c",
                payload=l21,
                meta={"iter": k},
                declared_size=self.shared.l21_bytes(k),
            ),
            to=f"c@{k}",
            route=ctrl,
        )
        # L11 + pivots to the solve dispatcher.
        panel_payload = None
        if packed is not None:
            panel_payload = (packed[:r, :].copy(), piv)
        yield Post(
            DataObject(
                "panel_ready",
                payload=panel_payload,
                meta={"iter": k},
                declared_size=self.shared.panel_bytes,
            ),
            to=f"tdisp@{k}",
            route=ctrl,
        )


class Trsm(LeafOperation):
    """(b) of Fig. 5: row flips + triangular solve for one column block."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        k, r = self.k, cfg.r
        j = obj.get("col")
        block = ctx.thread_state.get(("block", j))
        payload = obj.payload

        def swap_kernel():
            _, piv = payload
            apply_pivots(block[k * r :, :], piv)
            return True

        yield Compute(
            rowswap_spec(r, r),
            swap_kernel if (block is not None and payload is not None) else None,
        )

        def solve_kernel():
            l11, _ = payload
            t12 = trsm_block(l11, block[k * r : (k + 1) * r, :])
            block[k * r : (k + 1) * r, :] = t12
            return t12

        t12 = yield Compute(
            trsm_spec(r),
            solve_kernel if (block is not None and payload is not None) else None,
        )
        yield Post(
            DataObject(
                "t12",
                payload=t12,
                meta={"col": j, "iter": k},
                declared_size=self.shared.t12_bytes,
            ),
            to=f"c@{k}",
            route=self.shared.control_route(k % ctx.group_size("workers")),
        )


class CollectCState:
    """Accumulator of the multiplication-request stream (Fig. 5's (c)):
    the local L21 panel plus T12 notifications awaiting pairing."""

    __slots__ = ("l21", "have_l21", "pending", "t12_seen", "emitted", "rr")

    def __init__(self) -> None:
        self.l21: Any = None
        self.have_l21 = False
        self.pending: list[DataObject] = []
        self.t12_seen = 0
        self.emitted = 0
        self.rr = 0


class CollectC(StreamOperation):
    """(c) of Fig. 5: collect T12 blocks, stream multiplication requests.

    In pipelined mode each T12 arrival immediately fans out its row of
    block products; in basic mode all requests wait for the last solve
    (the merge-split barrier of the basic flow graph).  Flow control, when
    enabled, attaches to this vertex: it is "the stream operation that
    generates the multiplication requests".
    """

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k
        nb = shared.cfg.nb
        self.expected_t12 = nb - 1 - k
        self.total_requests = self.expected_t12 * self.expected_t12

    def instance_key(self, obj: DataObject) -> Any:
        return self.k

    def initial_state(self, ctx) -> CollectCState:
        return CollectCState()

    def combine(self, ctx, state: CollectCState, obj: DataObject):
        yield Compute(handling_spec(), None)
        if obj.kind == "panel_for_c":
            state.l21 = obj.payload
            state.have_l21 = True
        else:
            state.t12_seen += 1
            state.pending.append(obj)
        # Pipelined: release requests per column as soon as possible.
        # Basic: the merge-split barrier — nothing leaves before the last
        # triangular solve has reported in.
        releasable = state.have_l21 and (
            self.shared.cfg.pipelined or state.t12_seen == self.expected_t12
        )
        if releasable and state.pending:
            pending, state.pending = (
                sorted(state.pending, key=lambda o: o.get("col")),
                [],
            )
            for t12_obj in pending:
                yield from self._emit_column(ctx, state, t12_obj)
        if state.emitted == self.total_requests:
            ctx.finish_instance()

    def _emit_column(self, ctx, state: CollectCState, t12_obj: DataObject):
        cfg = self.shared.cfg
        j = t12_obj.get("col")
        t12 = t12_obj.payload
        for i in range(self.k + 1, cfg.nb):
            payload = None
            if state.l21 is not None and t12 is not None:
                payload = (state.l21[i], t12)
            state.emitted += 1
            index = state.rr
            state.rr += 1
            yield Post(
                DataObject(
                    "mult_req",
                    payload=payload,
                    meta={"row": i, "col": j, "iter": self.k},
                    declared_size=self.shared.mult_req_bytes,
                ),
                route=index,
            )


class Multiply(LeafOperation):
    """(d) of Fig. 5: one ``r x r`` block product."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        r = self.shared.cfg.r
        payload = obj.payload

        def kernel():
            l21_i, t12_j = payload
            return l21_i @ t12_j

        prod = yield Compute(gemm_spec(r), kernel if payload is not None else None)
        yield Post(
            DataObject(
                "mult_res",
                payload=prod,
                meta={"row": obj.get("row"), "col": obj.get("col"), "iter": self.k},
                declared_size=self.shared.mult_res_bytes,
            ),
        )


class Subtract(LeafOperation):
    """(e) of Fig. 5: subtract one product from the trailing column."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        r = cfg.r
        i, j = obj.get("row"), obj.get("col")
        block = ctx.thread_state.get(("block", j))
        prod = obj.payload

        def kernel():
            block[i * r : (i + 1) * r, :] -= prod
            return True

        yield Compute(
            sub_spec(r), kernel if (block is not None and prod is not None) else None
        )
        yield Post(
            DataObject(
                "sub_done",
                meta={"row": i, "col": j, "iter": self.k},
                declared_size=0.0,
            ),
            to=f"dispatch@{self.k + 1}",
            route=self.shared.dispatch_home(self.k + 1),
        )


class RowFlip(LeafOperation):
    """(g) of Fig. 5: ordered row exchanges on already-factored columns.

    Flips for column ``j`` must apply in iteration order; arrivals may be
    reordered by the network, so out-of-order pivot vectors are buffered
    in thread state and applied once their predecessors have been.
    """

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        r = cfg.r
        j = obj.get("col")
        state = ctx.thread_state
        pending = state.setdefault(("flips", j), {})
        pending[obj.get("iter")] = obj.payload
        nxt = state.setdefault(("flips_next", j), j + 1)
        applied = 0
        block = state.get(("block", j))
        while nxt in pending:
            piv = pending.pop(nxt)
            if block is not None and piv is not None:
                apply_pivots(block[nxt * r :, :], piv)
            applied += 1
            nxt += 1
        state[("flips_next", j)] = nxt

        if applied:
            yield Compute(rowswap_spec(applied * r, r), None)
        else:
            yield Compute(handling_spec(), None)
        yield Post(
            DataObject(
                "flip_done",
                meta={"col": j, "iter": self.k},
                declared_size=0.0,
            ),
            to="sink",
        )


class TerminationSink(StreamOperation):
    """(h) of Fig. 5: collect row-exchange and termination notifications."""

    def __init__(self, shared: LUShared) -> None:
        self.shared = shared
        self.expected = shared.sink_expected()

    def instance_key(self, obj: DataObject) -> Any:
        return "sink"

    def initial_state(self, ctx) -> dict:
        return {"count": 0}

    def combine(self, ctx, state: dict, obj: DataObject):
        state["count"] += 1
        if state["count"] == self.expected:
            ctx.finish_instance()
        return None


# --------------------------------------------------------------------------
# PM subgraph (Fig. 7): parallel sub-block multiplication
# --------------------------------------------------------------------------


def _pm_base(k: int, i: int, j: int) -> int:
    """Deterministic placement base for a request's sub-blocks."""
    return (i * 31 + j * 7 + k * 3) & 0x7FFFFFFF


class PMDistribute(SplitOperation):
    """(a) of Fig. 7: store the first matrix, send column blocks of B."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        r, s = cfg.r, cfg.pm_subblock
        i, j = obj.get("row"), obj.get("col")
        a = b = None
        if obj.payload is not None:
            a, b = obj.payload
        ctx.thread_state[("pm_a", self.k, i, j)] = a
        yield Compute(store_spec(8.0 * r * r), None)
        base = _pm_base(self.k, i, j)
        for q in range(r // s):
            col_payload = None
            if b is not None:
                col_payload = b[:, q * s : (q + 1) * s].copy()
            yield Post(
                DataObject(
                    "pm_storecol",
                    payload=col_payload,
                    meta={
                        "row": i,
                        "col": j,
                        "q": q,
                        "home": ctx.thread_index,
                        "iter": self.k,
                    },
                    declared_size=8.0 * r * s,
                ),
                route=base + q,
            )


class PMStore(LeafOperation):
    """(b) of Fig. 7: store a column sub-block on its thread."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        i, j, q = obj.get("row"), obj.get("col"), obj.get("q")
        key = ("pm_b", self.k, i, j, q)
        ctx.thread_state[key] = obj.payload
        ctx.thread_state[("pm_uses",) + key[1:]] = cfg.r // cfg.pm_subblock
        yield Compute(store_spec(8.0 * cfg.r * cfg.pm_subblock), None)
        yield Post(
            DataObject(
                "pm_stored",
                meta=dict(obj.meta),
                declared_size=0.0,
            ),
            route=obj.get("home"),
        )


class PMCollect(StreamOperation):
    """(c)+(d) of Fig. 7: collect store notifications, send line blocks."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def initial_state(self, ctx) -> dict:
        return {}

    def combine(self, ctx, state: dict, obj: DataObject):
        state.setdefault("meta", dict(obj.meta))
        yield Compute(handling_spec(), None)

    def finalize(self, ctx, state: dict):
        cfg = self.shared.cfg
        r, s = cfg.r, cfg.pm_subblock
        meta = state["meta"]
        i, j = meta["row"], meta["col"]
        a = ctx.thread_state.pop(("pm_a", self.k, i, j), None)
        base = _pm_base(self.k, i, j)
        for p in range(r // s):
            line_payload = None
            if a is not None:
                line_payload = a[p * s : (p + 1) * s, :].copy()
            for q in range(r // s):
                yield Post(
                    DataObject(
                        "pm_linereq",
                        payload=line_payload,
                        meta={
                            "row": i,
                            "col": j,
                            "p": p,
                            "q": q,
                            "home": meta["home"],
                            "iter": self.k,
                        },
                        declared_size=8.0 * s * r,
                    ),
                    route=base + q,
                )


class PMMultiply(LeafOperation):
    """(e) of Fig. 7: multiply a line block with a stored column block."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def run(self, ctx, obj):
        cfg = self.shared.cfg
        r, s = cfg.r, cfg.pm_subblock
        i, j, p, q = (obj.get("row"), obj.get("col"), obj.get("p"), obj.get("q"))
        bkey = ("pm_b", self.k, i, j, q)
        ukey = ("pm_uses", self.k, i, j, q)
        b = ctx.thread_state.get(bkey)
        a_p = obj.payload

        def kernel():
            return a_p @ b

        prod = yield Compute(
            sub_gemm_spec(s, r),
            kernel if (a_p is not None and b is not None) else None,
        )
        uses = ctx.thread_state.get(ukey)
        if uses is not None:
            if uses <= 1:
                ctx.thread_state.pop(bkey, None)
                ctx.thread_state.pop(ukey, None)
            else:
                ctx.thread_state[ukey] = uses - 1
        yield Post(
            DataObject(
                "pm_partres",
                payload=prod,
                meta={"row": i, "col": j, "p": p, "q": q, "iter": self.k},
                declared_size=8.0 * s * s,
            ),
            route=obj.get("home"),
        )


class PMAssemble(MergeOperation):
    """(f) of Fig. 7: build the ``r x r`` product from sub-block results."""

    def __init__(self, shared: LUShared, k: int) -> None:
        self.shared = shared
        self.k = k

    def initial_state(self, ctx) -> dict:
        return {"parts": {}, "meta": None}

    def combine(self, ctx, state: dict, obj: DataObject):
        if state["meta"] is None:
            state["meta"] = dict(obj.meta)
        state["parts"][(obj.get("p"), obj.get("q"))] = obj.payload
        return None

    def finalize(self, ctx, state: dict):
        cfg = self.shared.cfg
        r, s = cfg.r, cfg.pm_subblock
        meta = state["meta"]
        parts = state["parts"]
        prod = None
        if all(v is not None for v in parts.values()) and parts:
            prod = np.empty((r, r))
            for (p, q), part in parts.items():
                prod[p * s : (p + 1) * s, q * s : (q + 1) * s] = part
        yield Compute(store_spec(8.0 * r * r), None)
        yield Post(
            DataObject(
                "mult_res",
                payload=prod,
                meta={"row": meta["row"], "col": meta["col"], "iter": self.k},
                declared_size=self.shared.mult_res_bytes,
            )
        )


def build_pm_subgraph(shared: LUShared, k: int) -> FlowGraph:
    """The Fig. 7 multiplication subgraph for level ``k``."""
    g = FlowGraph(f"pm@{k}")
    g.add_split("pm_dist", lambda: PMDistribute(shared, k), group="workers")
    g.add_leaf("pm_store", lambda: PMStore(shared, k), group="workers")
    g.add_stream(
        "pm_collect", lambda: PMCollect(shared, k), group="workers", closes="pm_dist"
    )
    g.add_leaf("pm_mult", lambda: PMMultiply(shared, k), group="workers")
    g.add_merge(
        "pm_assemble", lambda: PMAssemble(shared, k), group="workers", closes="pm_collect"
    )
    # Posts carry explicit routes; edge routing functions are fallbacks.
    g.connect("pm_dist", "pm_store", Constant(0))
    g.connect("pm_store", "pm_collect", Constant(0))
    g.connect("pm_collect", "pm_mult", Constant(0))
    g.connect("pm_mult", "pm_assemble", Constant(0))
    return g


# --------------------------------------------------------------------------
# whole-application graph
# --------------------------------------------------------------------------


def build_lu_graph(shared: LUShared) -> FlowGraph:
    """Assemble the complete LU flow graph for one configuration."""
    cfg = shared.cfg
    nb = cfg.nb
    g = FlowGraph(f"lu-{cfg.variant_name}-n{cfg.n}-r{cfg.r}")

    g.add_split("init", lambda: InitSplit(shared), group="main")
    g.add_leaf("store", lambda: StoreBlock(shared), group="workers")
    g.add_keyed_stream("sink", lambda: TerminationSink(shared), group="main")
    g.connect("init", "store", Modulo("col"))

    for k in range(nb):
        shared_k = k  # bind loop variable for factories

        g.add_keyed_stream(
            f"dispatch@{k}",
            (lambda kk=shared_k: Dispatch(shared, kk)),
            group="control",
        )
        g.add_leaf(
            f"lu@{k}", (lambda kk=shared_k: LUPanel(shared, kk)), group="workers"
        )
        g.connect(f"dispatch@{k}", f"lu@{k}", Modulo("col"))
        if k > 0:
            g.add_leaf(
                f"rowflip@{k}",
                (lambda kk=shared_k: RowFlip(shared, kk)),
                group="workers",
            )
            g.connect(f"lu@{k}", f"rowflip@{k}", Modulo("col"))
            g.connect(f"rowflip@{k}", "sink", Constant(0))
        if k == nb - 1:
            g.connect(f"lu@{k}", "sink", Constant(0))
            continue

        g.add_keyed_stream(
            f"tdisp@{k}", (lambda kk=shared_k: TrsmDispatch(shared, kk)), group="control"
        )
        g.add_leaf(
            f"trsm@{k}", (lambda kk=shared_k: Trsm(shared, kk)), group="workers"
        )
        g.add_keyed_stream(
            f"c@{k}",
            (lambda kk=shared_k: CollectC(shared, kk)),
            group="control",
            max_in_flight=cfg.flow_control,
        )
        g.add_leaf(
            f"mult@{k}", (lambda kk=shared_k: Multiply(shared, kk)), group="workers"
        )
        g.add_leaf(
            f"sub@{k}", (lambda kk=shared_k: Subtract(shared, kk)), group="workers"
        )

        g.connect(f"dispatch@{k}", f"tdisp@{k}", Constant(0))
        g.connect(f"lu@{k}", f"tdisp@{k}", Constant(0))
        g.connect(f"lu@{k}", f"c@{k}", Constant(0))
        g.connect(f"tdisp@{k}", f"trsm@{k}", Modulo("col"))
        g.connect(f"trsm@{k}", f"c@{k}", Constant(0))
        g.connect(f"c@{k}", f"mult@{k}", Constant(0))
        g.connect(f"mult@{k}", f"sub@{k}", Modulo("col"))

        if cfg.pm_subblock is not None:
            g.replace_leaf(
                f"mult@{k}",
                build_pm_subgraph(shared, k),
                entry="pm_dist",
                exit_="pm_assemble",
            )

    # Edges into dispatch vertices (all of which now exist).
    g.connect("store", "dispatch@0", Constant(0))
    for k in range(nb - 1):
        g.connect(f"sub@{k}", f"dispatch@{k + 1}", Constant(0))
    return g
