"""Numerical kernels of the block LU factorization (paper, section 5).

The decomposition follows Golub & van Loan's recursive block scheme: for a
matrix ``A`` with leading block column of width ``r``,

1. factor the panel ``A[:, :r] = [L11; L21] * U11`` with partial pivoting,
2. solve the triangular system ``L11 * T12 = A[:r, r:]`` (BLAS ``trsm``)
   after applying the panel's row exchanges,
3. update the trailing matrix ``A' = B - L21 * T12`` and recurse on ``A'``.

All kernels operate on numpy arrays and are exercised *for real* in direct
execution and PDEXEC (verification) modes; under NOALLOC only their cost
specifications are used.
"""

from __future__ import annotations

from typing import Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]
try:
    import scipy.linalg
except ImportError:  # no-scipy install: this module fails at use, not import
    scipy = None  # type: ignore[assignment]

from repro.errors import VerificationError


def panel_lu(panel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LU-factor a rectangular ``m x r`` panel with partial pivoting.

    Returns ``(lu, piv)`` in LAPACK getrf convention: ``lu`` packs the
    unit-lower ``L`` (below the diagonal) and ``U`` (upper triangle);
    ``piv[i]`` is the row swapped with row ``i`` at elimination step ``i``.
    """
    if panel.ndim != 2:
        raise VerificationError("panel must be a 2-D array")
    lu, piv = scipy.linalg.lu_factor(panel, check_finite=False)
    return lu, piv

def apply_pivots(block: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply getrf-style row exchanges to ``block`` in place.

    ``piv`` refers to rows of ``block`` directly (caller slices the
    relevant row range first).  Returns ``block`` for chaining.
    """
    for i, p in enumerate(piv):
        p = int(p)
        if p != i:
            block[[i, p], :] = block[[p, i], :]
    return block


def undo_pivots(block: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Invert :func:`apply_pivots` (used by property tests)."""
    for i in range(len(piv) - 1, -1, -1):
        p = int(piv[i])
        if p != i:
            block[[i, p], :] = block[[p, i], :]
    return block


def trsm_block(l11: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L11 @ X = rhs`` with ``L11`` unit lower triangular.

    ``l11`` is the packed getrf output; only its strict lower triangle is
    read.  This is step 2 of the block scheme (the BLAS ``trsm`` routine).
    """
    return scipy.linalg.solve_triangular(
        l11, rhs, lower=True, unit_diagonal=True, check_finite=False
    )


def gemm_update(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Trailing update ``C -= A @ B`` (step 3); returns the new ``C``.

    Kept out-of-place on purpose: in the distributed application the
    result block travels as a message and the subtraction happens at the
    owner (operation (e) of Fig. 5 computes the product, the subtraction
    operation applies it).
    """
    return c - a @ b


def block_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The block product ``A @ B`` — operation (d)/(e) of the flow graphs."""
    return a @ b


def sequential_block_lu(
    a: np.ndarray, r: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reference single-node blocked LU with partial pivoting.

    Returns ``(lu, perm)`` where ``lu`` packs L and U and ``perm`` is the
    global row permutation (row ``i`` of ``P @ A`` is row ``perm[i]`` of
    ``A``).  Used for verification and for the paper's serial reference
    time (185.1 s on the UltraSparc).
    """
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise VerificationError("sequential_block_lu expects a square matrix")
    if n % r != 0:
        raise VerificationError(f"block size {r} must divide matrix size {n}")
    lu = a.copy()
    perm = np.arange(n)
    nb = n // r
    for k in range(nb):
        lo, hi = k * r, (k + 1) * r
        panel = lu[lo:, lo:hi]
        panel_lu_packed, piv = panel_lu(panel)
        lu[lo:, lo:hi] = panel_lu_packed
        # Propagate the row exchanges across the whole matrix and the
        # global permutation (pivots are local to rows lo..n).
        for i, p in enumerate(piv):
            p = int(p)
            if p != i:
                lu[[lo + i, lo + p], :lo] = lu[[lo + p, lo + i], :lo]
                lu[[lo + i, lo + p], hi:] = lu[[lo + p, lo + i], hi:]
                perm[[lo + i, lo + p]] = perm[[lo + p, lo + i]]
        if hi < n:
            l11 = lu[lo:hi, lo:hi]
            t12 = trsm_block(l11, lu[lo:hi, hi:])
            lu[lo:hi, hi:] = t12
            lu[hi:, hi:] = gemm_update(lu[hi:, hi:], lu[hi:, lo:hi], t12)
    return lu, perm


def unpack_lu(lu: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split packed LU into explicit unit-lower L and upper U."""
    l = np.tril(lu, -1) + np.eye(lu.shape[0])
    u = np.triu(lu)
    return l, u


def verify_factorization(
    a_original: np.ndarray,
    lu: np.ndarray,
    perm: np.ndarray,
    rtol: float = 1e-8,
) -> float:
    """Check ``P @ A == L @ U``; returns the relative residual.

    Raises :class:`VerificationError` when the residual exceeds ``rtol``
    (scaled by the matrix norm).
    """
    l, u = unpack_lu(lu)
    pa = a_original[perm, :]
    residual = np.linalg.norm(pa - l @ u) / max(np.linalg.norm(a_original), 1e-300)
    if not np.isfinite(residual) or residual > rtol:
        raise VerificationError(
            f"LU verification failed: relative residual {residual:.3e} > {rtol:.1e}"
        )
    return float(residual)


def random_matrix(n: int, seed: int = 0) -> np.ndarray:
    """Well-conditioned random test matrix (diagonally weighted)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    # Mild diagonal dominance keeps pivot growth small without making
    # pivoting trivial (off-diagonal entries still win regularly).
    a[np.arange(n), np.arange(n)] += 2.0
    return a
