"""The LU application object: configuration, wiring and verification."""

from __future__ import annotations

from typing import Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.apps.lu.blockmath import random_matrix, verify_factorization
from repro.apps.lu.config import LUConfig
from repro.apps.lu.graphs import LUShared, build_lu_graph
from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.malleability import MigrationPlanner, modulo_owner_planner
from repro.dps.runtime import Runtime
from repro.errors import VerificationError
from repro.sim.modes import SimulationMode

# Re-export so callers can ``from repro.apps.lu.app import LUConfig``.
from repro.apps.lu.config import LUConfig as LUConfig  # noqa: F401


class LUApplication:
    """Parallel block LU factorization, runnable on any execution engine.

    One instance describes one run configuration.  The same object runs
    under :class:`~repro.sim.simulator.DPSSimulator` (prediction) and
    :class:`~repro.testbed.executor.TestbedExecutor` (measurement) — the
    paper's "real and simulated applications may be run identically".
    """

    def __init__(self, cfg: LUConfig) -> None:
        self.cfg = cfg
        matrix: Optional[np.ndarray] = None
        if cfg.mode is not SimulationMode.PDEXEC_NOALLOC:
            matrix = random_matrix(cfg.n, seed=cfg.matrix_seed)
        self.original = matrix.copy() if matrix is not None else None
        self.shared = LUShared(cfg, matrix)
        self._runtime: Optional[Runtime] = None

    # --------------------------------------------------- Application proto
    def build_graph(self) -> FlowGraph:
        return build_lu_graph(self.shared)

    def build_deployment(self) -> Deployment:
        cfg = self.cfg
        dep = Deployment(cfg.num_nodes)
        dep.add_singleton("main", 0)
        dep.add_per_node("control")
        dep.add_group(
            "workers",
            [cfg.node_of_worker(t) for t in range(cfg.num_threads)],
        )
        return dep

    def bootstrap(self, runtime: Runtime) -> None:
        self._runtime = runtime
        runtime.inject("init", DataObject("lu_job", meta={"n": self.cfg.n}))

    def migration_planner(self) -> Optional[MigrationPlanner]:
        shared = self.shared

        def key_index(key) -> Optional[int]:
            if isinstance(key, tuple) and len(key) == 2 and key[0] in (
                "block",
                "piv",
                "flips",
                "flips_next",
            ):
                return int(key[1])
            return None

        def size_of(key, value) -> float:
            if isinstance(key, tuple) and key and key[0] == "block":
                return shared.block_bytes
            if isinstance(key, tuple) and key and key[0] == "piv":
                return shared.piv_bytes
            return float(getattr(value, "nbytes", 0.0))

        return modulo_owner_planner(key_index, size_of)

    # -------------------------------------------------------- verification
    def gather_lu(self, runtime: Runtime) -> tuple[np.ndarray, np.ndarray]:
        """Collect the factored column blocks and pivots after a run.

        Only meaningful when payloads were allocated.  Returns the packed
        LU matrix and the global row permutation.
        """
        cfg = self.cfg
        if self.original is None:
            raise VerificationError(
                "gather_lu requires an allocating mode (payloads were elided)"
            )
        lu = np.empty((cfg.n, cfg.n))
        pivs: dict[int, np.ndarray] = {}
        found = 0
        for thread in runtime.live_threads("workers"):
            for key, value in thread.state.items():
                if isinstance(key, tuple) and key[0] == "block":
                    lu[:, key[1] * cfg.r : (key[1] + 1) * cfg.r] = value
                    found += 1
                elif isinstance(key, tuple) and key[0] == "piv":
                    pivs[key[1]] = value
        if found != cfg.nb:
            raise VerificationError(
                f"expected {cfg.nb} column blocks in thread states, found {found}"
            )
        if sorted(pivs) != list(range(cfg.nb)):
            raise VerificationError("missing pivot vectors in thread states")
        perm = np.arange(cfg.n)
        for k in range(cfg.nb):
            lo = k * cfg.r
            for i, p in enumerate(pivs[k]):
                p = int(p)
                if p != i:
                    perm[[lo + i, lo + p]] = perm[[lo + p, lo + i]]
        return lu, perm

    def verify(self, runtime: Optional[Runtime] = None, rtol: float = 1e-8) -> float:
        """Check ``P @ A == L @ U`` on the run's output; returns the residual."""
        runtime = runtime or self._runtime
        if runtime is None:
            raise VerificationError("application has not been run yet")
        lu, perm = self.gather_lu(runtime)
        return verify_factorization(self.original, lu, perm, rtol=rtol)
