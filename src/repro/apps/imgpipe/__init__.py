"""Split/merge image-processing farm (quickstart example application)."""

from repro.apps.imgpipe.app import ImagePipelineApplication, ImagePipelineConfig

__all__ = ["ImagePipelineApplication", "ImagePipelineConfig"]
