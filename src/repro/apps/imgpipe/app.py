"""A pipelined image-processing farm.

The canonical DPS introductory application (paper Fig. 1): a split
distributes tiles of every frame, leaf operations run a two-stage filter
chain, and a merge collects the results.  Frames stream through the graph
back to back, so computation and communication overlap — the behaviour the
simulator's dynamic-efficiency output makes visible.

This app is intentionally simple; the examples use it to demonstrate the
public API before moving on to the LU evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.operations import (
    Compute,
    KernelSpec,
    LeafOperation,
    MergeOperation,
    Post,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Constant, RoundRobin
from repro.dps.runtime import Runtime
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode


@dataclass(frozen=True)
class ImagePipelineConfig:
    """A stream of frames cut into tiles and filtered in parallel."""

    frames: int = 8
    tiles_per_frame: int = 16
    tile_pixels: int = 256 * 256
    flops_per_pixel: float = 40.0
    num_threads: int = 4
    num_nodes: int = 4
    mode: SimulationMode = SimulationMode.PDEXEC_NOALLOC

    def __post_init__(self) -> None:
        if self.frames < 1 or self.tiles_per_frame < 1:
            raise ConfigurationError("frames and tiles_per_frame must be >= 1")

    @property
    def tile_bytes(self) -> float:
        return 4.0 * self.tile_pixels  # RGBA bytes


def _filter_spec(cfg: ImagePipelineConfig, stage: str) -> KernelSpec:
    return KernelSpec(
        f"filter_{stage}",
        flops=cfg.flops_per_pixel * cfg.tile_pixels,
        working_set=2.0 * cfg.tile_bytes,
        params={"stage": stage},
    )


class _FrameSplit(SplitOperation):
    """Cut one frame into tiles."""

    def __init__(self, cfg: ImagePipelineConfig) -> None:
        self.cfg = cfg

    def run(self, ctx, obj):
        frame = obj.get("frame")
        for t in range(self.cfg.tiles_per_frame):
            yield Compute(KernelSpec("tile_cut", flops=2000.0), None)
            yield Post(
                DataObject(
                    "tile",
                    meta={"frame": frame, "tile": t},
                    declared_size=self.cfg.tile_bytes,
                )
            )


class _Filter(LeafOperation):
    """One filter stage over one tile."""

    def __init__(self, cfg: ImagePipelineConfig, stage: str) -> None:
        self.cfg = cfg
        self.stage = stage

    def run(self, ctx, obj):
        yield Compute(_filter_spec(self.cfg, self.stage), None)
        yield Post(
            DataObject(
                "tile",
                meta=dict(obj.meta),
                declared_size=self.cfg.tile_bytes,
            )
        )


class _FrameMerge(MergeOperation):
    """Reassemble a frame from its filtered tiles."""

    def __init__(self, cfg: ImagePipelineConfig) -> None:
        self.cfg = cfg

    def initial_state(self, ctx) -> list:
        return []

    def combine(self, ctx, state, obj):
        state.append(obj.get("tile"))
        return None

    def finalize(self, ctx, state):
        frame_meta = {"tiles": len(state)}
        yield Compute(KernelSpec("frame_assemble", flops=5000.0), None)
        yield Post(DataObject("frame_done", meta=frame_meta, declared_size=0.0))


class _Sink(StreamOperation):
    """Count completed frames; finish after the last one."""

    def __init__(self, cfg: ImagePipelineConfig) -> None:
        self.cfg = cfg

    def instance_key(self, obj: DataObject) -> Any:
        return "frames"

    def initial_state(self, ctx) -> dict:
        return {"done": 0}

    def combine(self, ctx, state, obj):
        state["done"] += 1
        ctx.mark_phase(f"frame{state['done']}")
        if state["done"] == self.cfg.frames:
            ctx.finish_instance()
        return None


class ImagePipelineApplication:
    """Frames -> split into tiles -> 2-stage filter farm -> merge."""

    def __init__(self, cfg: ImagePipelineConfig) -> None:
        self.cfg = cfg

    def build_graph(self) -> FlowGraph:
        cfg = self.cfg
        g = FlowGraph(f"imgpipe-{cfg.frames}f")
        g.add_split("split", lambda: _FrameSplit(cfg), group="main")
        g.add_leaf("denoise", lambda: _Filter(cfg, "denoise"), group="workers")
        g.add_leaf("sharpen", lambda: _Filter(cfg, "sharpen"), group="workers")
        g.add_merge("assemble", lambda: _FrameMerge(cfg), group="main", closes="split")
        g.add_keyed_stream("sink", lambda: _Sink(cfg), group="main")
        g.connect("split", "denoise", RoundRobin())
        g.connect("denoise", "sharpen", RoundRobin())
        g.connect("sharpen", "assemble", Constant(0))
        g.connect("assemble", "sink", Constant(0))
        return g

    def build_deployment(self) -> Deployment:
        cfg = self.cfg
        dep = Deployment(cfg.num_nodes)
        dep.add_singleton("main", 0)
        dep.add_group(
            "workers", [t % cfg.num_nodes for t in range(cfg.num_threads)]
        )
        return dep

    def bootstrap(self, runtime: Runtime) -> None:
        for f in range(self.cfg.frames):
            runtime.inject(
                "split", DataObject("frame", meta={"frame": f}, declared_size=0.0)
            )

    def migration_planner(self):
        return None
