"""Standalone parallel matrix multiplication (paper Fig. 7)."""

from repro.apps.matmul.app import MatmulApplication, MatmulConfig

__all__ = ["MatmulApplication", "MatmulConfig"]
