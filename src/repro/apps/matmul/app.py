"""Parallel matrix multiplication using the Fig. 7 flow graph.

``C = A @ B`` with ``A`` cut into line blocks and ``B`` into column
blocks: "(a) distributes the column blocks of the second matrix to the
processing nodes, which (b) store them locally.  Each sub-block
multiplication can then be performed by (d) sending the line blocks of the
first matrix to the processing nodes, which (e) multiply them with the
locally stored column blocks."

Unlike the LU graph (which uses keyed streams), this application exercises
the frame-based split/stream/merge pairing of the DPS runtime end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.apps.lu.costs import handling_spec, sub_gemm_spec
from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.operations import (
    Compute,
    LeafOperation,
    MergeOperation,
    Post,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Constant, Modulo
from repro.dps.runtime import Runtime
from repro.errors import ConfigurationError, VerificationError
from repro.sim.modes import SimulationMode


@dataclass(frozen=True)
class MatmulConfig:
    """One parallel matrix-multiplication run."""

    n: int = 256
    s: int = 64  # sub-block size: line blocks s x n, column blocks n x s
    num_threads: int = 4
    num_nodes: int = 2
    mode: SimulationMode = SimulationMode.PDEXEC
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n % self.s != 0:
            raise ConfigurationError(f"s={self.s} must divide n={self.n}")
        if self.num_threads < self.num_nodes:
            raise ConfigurationError("need at least one thread per node")

    @property
    def blocks(self) -> int:
        return self.n // self.s


class _Distribute(SplitOperation):
    """(a): store A in thread state at home, send column blocks of B."""

    def __init__(self, app: "MatmulApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        cfg = self.app.cfg
        a, b = (None, None)
        if obj.payload is not None:
            a, b = obj.payload
        ctx.thread_state["matmul_a"] = a
        for q in range(cfg.blocks):
            payload = None
            if b is not None:
                payload = b[:, q * cfg.s : (q + 1) * cfg.s].copy()
            yield Compute(handling_spec(), None)
            yield Post(
                DataObject(
                    "colblock",
                    payload=payload,
                    meta={"q": q},
                    declared_size=8.0 * cfg.n * cfg.s,
                ),
            )


class _Store(LeafOperation):
    """(b): store a column block on the receiving thread."""

    def __init__(self, app: "MatmulApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        ctx.thread_state[("matmul_b", obj.get("q"))] = obj.payload
        yield Compute(handling_spec(), None)
        yield Post(
            DataObject("stored", meta={"q": obj.get("q")}, declared_size=0.0)
        )


class _SendLines(StreamOperation):
    """(c)+(d): collect store notifications, send line blocks of A."""

    def __init__(self, app: "MatmulApplication") -> None:
        self.app = app

    def initial_state(self, ctx) -> dict:
        return {}

    def combine(self, ctx, state, obj):
        yield Compute(handling_spec(), None)

    def finalize(self, ctx, state):
        cfg = self.app.cfg
        a = ctx.thread_state.get("matmul_a")
        for p in range(cfg.blocks):
            line = None
            if a is not None:
                line = a[p * cfg.s : (p + 1) * cfg.s, :].copy()
            for q in range(cfg.blocks):
                yield Post(
                    DataObject(
                        "linereq",
                        payload=line,
                        meta={"p": p, "q": q},
                        declared_size=8.0 * cfg.s * cfg.n,
                    )
                )


class _Multiply(LeafOperation):
    """(e): multiply a line block with the locally stored column block."""

    def __init__(self, app: "MatmulApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        cfg = self.app.cfg
        line = obj.payload
        b_col = ctx.thread_state.get(("matmul_b", obj.get("q")))

        def kernel():
            return line @ b_col

        prod = yield Compute(
            sub_gemm_spec(cfg.s, cfg.n),
            kernel if (line is not None and b_col is not None) else None,
        )
        yield Post(
            DataObject(
                "partres",
                payload=prod,
                meta={"p": obj.get("p"), "q": obj.get("q")},
                declared_size=8.0 * cfg.s * cfg.s,
            )
        )


class _Build(MergeOperation):
    """(f): collect multiplication results and build the product matrix."""

    def __init__(self, app: "MatmulApplication") -> None:
        self.app = app

    def initial_state(self, ctx) -> dict:
        return {}

    def combine(self, ctx, state, obj):
        state[(obj.get("p"), obj.get("q"))] = obj.payload
        return None

    def finalize(self, ctx, state):
        cfg = self.app.cfg
        c = None
        if state and all(v is not None for v in state.values()):
            c = np.empty((cfg.n, cfg.n))
            for (p, q), part in state.items():
                c[p * cfg.s : (p + 1) * cfg.s, q * cfg.s : (q + 1) * cfg.s] = part
        self.app.result = c
        yield Compute(handling_spec(), None)
        yield Post(DataObject("done", meta={"parts": len(state)}, declared_size=0.0))


class _Done(StreamOperation):
    """Termination sink."""

    def instance_key(self, obj: DataObject) -> Any:
        return "done"

    def combine(self, ctx, state, obj):
        ctx.finish_instance()
        return None


class MatmulApplication:
    """``C = A @ B`` on the Fig. 7 flow graph; runnable on any engine."""

    def __init__(self, cfg: MatmulConfig) -> None:
        self.cfg = cfg
        self.a: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None
        self.result: Optional[np.ndarray] = None
        if cfg.mode.allocates:
            rng = np.random.default_rng(cfg.seed)
            self.a = rng.standard_normal((cfg.n, cfg.n))
            self.b = rng.standard_normal((cfg.n, cfg.n))

    # --------------------------------------------------- Application proto
    def build_graph(self) -> FlowGraph:
        g = FlowGraph(f"matmul-n{self.cfg.n}-s{self.cfg.s}")
        g.add_split("distribute", lambda: _Distribute(self), group="main")
        g.add_leaf("store", lambda: _Store(self), group="workers")
        g.add_stream(
            "sendlines", lambda: _SendLines(self), group="main", closes="distribute"
        )
        g.add_leaf("multiply", lambda: _Multiply(self), group="workers")
        g.add_merge("build", lambda: _Build(self), group="main", closes="sendlines")
        g.add_keyed_stream("done", _Done, group="main")
        g.connect("distribute", "store", Modulo("q"))
        g.connect("store", "sendlines", Constant(0))
        g.connect("sendlines", "multiply", Modulo("q"))
        g.connect("multiply", "build", Constant(0))
        g.connect("build", "done", Constant(0))
        return g

    def build_deployment(self) -> Deployment:
        cfg = self.cfg
        dep = Deployment(cfg.num_nodes)
        dep.add_singleton("main", 0)
        dep.add_group(
            "workers", [t % cfg.num_nodes for t in range(cfg.num_threads)]
        )
        return dep

    def bootstrap(self, runtime: Runtime) -> None:
        payload = None
        if self.a is not None:
            payload = (self.a, self.b)
        runtime.inject(
            "distribute",
            DataObject("matmul_job", payload=payload, meta={"n": self.cfg.n}),
        )

    def migration_planner(self):
        return None

    # -------------------------------------------------------- verification
    def verify(self, rtol: float = 1e-10) -> float:
        """Compare the distributed product against ``A @ B``."""
        if self.a is None or self.result is None:
            raise VerificationError("matmul ran without payloads; nothing to verify")
        expected = self.a @ self.b
        residual = float(
            np.linalg.norm(self.result - expected) / max(np.linalg.norm(expected), 1e-300)
        )
        if residual > rtol:
            raise VerificationError(f"matmul residual {residual:.3e} > {rtol:.1e}")
        return residual
