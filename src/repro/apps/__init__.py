"""Applications built on the DPS framework.

* :mod:`repro.apps.lu` — the paper's test application: parallel block LU
  factorization with partial pivoting, in all the flow-graph variants of
  sections 5-6.
* :mod:`repro.apps.matmul` — the standalone parallel matrix multiplication
  of Fig. 7.
* :mod:`repro.apps.imgpipe` — a split/merge image-processing farm used by
  the quickstart examples.
* :mod:`repro.apps.stencil` — an iterative Jacobi relaxation exercising
  neighborhood halo exchange, barrier vs pipelined variants and dynamic
  thread removal at iteration boundaries.
"""

from repro.apps.base import Application

__all__ = ["Application"]
