"""Parallel sample sort: all-to-all exchange over DPS flow graphs."""

from repro.apps.sort.app import SampleSortApplication, SampleSortConfig
from repro.apps.sort.kernels import (
    SampleSortCostModel,
    choose_splitters,
    local_sort_spec,
    merge_runs_spec,
    partition_by_splitters,
    partition_spec,
    sample_sort_rate_factors,
)

__all__ = [
    "SampleSortApplication",
    "SampleSortConfig",
    "SampleSortCostModel",
    "choose_splitters",
    "local_sort_spec",
    "merge_runs_spec",
    "partition_by_splitters",
    "partition_spec",
    "sample_sort_rate_factors",
]
