"""Parallel sample sort: an all-to-all exchange application for DPS.

A fourth application domain: sorting ``m`` keys across ``w`` worker
threads with the classic sample-sort structure —

1. *scatter*: the main thread cuts the input into ``w`` blocks;
2. *local sort*: each worker sorts its block and reports a regular sample
   (frame-paired split/merge: the sample merge closes the scatter split);
3. *splitter broadcast*: the main thread picks ``w - 1`` splitters and
   broadcasts them (the runtime's :class:`~repro.dps.routing.Broadcast`
   fan-out);
4. *all-to-all*: every worker partitions its sorted block and sends run
   ``j`` to worker ``j`` — the densest communication pattern of the apps
   in this repository, a deliberate stress of the star-contention model;
5. *merge*: each worker merges the ``w`` runs it received and the main
   thread concatenates the results.

Content dependence: the sizes of the all-to-all runs depend on the data.
Under ``PDEXEC_NOALLOC`` the application charges the *expected* uniform
run size instead — the paper restricts partial direct execution to
"programs whose parallel execution pattern does not depend on the content
of the computed data", and sample sort with regular sampling is close to
uniform, so the approximation stays honest (see the accuracy tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.apps.sort.kernels import (
    choose_splitters,
    local_sort_spec,
    merge_runs_spec,
    partition_by_splitters,
    partition_spec,
    sort_handling_spec,
)
from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.operations import (
    Compute,
    LeafOperation,
    MergeOperation,
    Post,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Broadcast, Constant, Modulo
from repro.dps.runtime import Runtime
from repro.errors import ConfigurationError, VerificationError
from repro.sim.modes import SimulationMode


@dataclass(frozen=True)
class SampleSortConfig:
    """One parallel sample-sort run.

    ``m`` keys are distributed over ``num_threads`` workers;
    ``oversample`` controls how many samples each worker contributes
    (``oversample * (num_threads - 1)``, regularly spaced).
    """

    m: int = 1 << 14
    num_threads: int = 4
    num_nodes: int = 2
    oversample: int = 4
    mode: SimulationMode = SimulationMode.PDEXEC
    seed: int = 13

    def __post_init__(self) -> None:
        if self.m < self.num_threads:
            raise ConfigurationError(
                f"need at least one key per worker ({self.m} keys, "
                f"{self.num_threads} workers)"
            )
        if self.num_nodes < 1 or self.num_threads < self.num_nodes:
            raise ConfigurationError(
                "need >= 1 node and at least one worker thread per node"
            )
        if self.oversample < 1:
            raise ConfigurationError("oversample must be >= 1")

    @property
    def block(self) -> int:
        """Keys per worker block (the last block absorbs the remainder)."""
        return self.m // self.num_threads

    def block_size(self, i: int) -> int:
        """Keys in worker ``i``'s initial block."""
        if i == self.num_threads - 1:
            return self.m - self.block * (self.num_threads - 1)
        return self.block

    def node_of_worker(self, t: int) -> int:
        """Deployment rule: worker thread ``t`` lives on this node."""
        return t % self.num_nodes


# --------------------------------------------------------------------------
# operations
# --------------------------------------------------------------------------


class _Scatter(SplitOperation):
    """Cut the input into one block per worker."""

    def __init__(self, app: "SampleSortApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        """Cut the input into per-worker blocks and post them."""
        cfg = self.app.cfg
        data = self.app.data
        offset = 0
        for i in range(cfg.num_threads):
            size = cfg.block_size(i)
            payload = None
            if data is not None:
                payload = data[offset : offset + size].copy()
            offset += size
            yield Compute(sort_handling_spec(), None)
            yield Post(
                DataObject(
                    "block",
                    payload=payload,
                    meta={"i": i, "size": size},
                    declared_size=8.0 * size,
                )
            )


class _LocalSort(LeafOperation):
    """Sort the local block, keep it, report a regular sample."""

    def __init__(self, app: "SampleSortApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        """Sort the block locally, keep it, report a regular sample."""
        cfg = self.app.cfg
        i = obj.get("i")
        size = obj.get("size")
        block = obj.payload

        def kernel():
            return np.sort(block)

        sorted_block = yield Compute(
            local_sort_spec(size), kernel if block is not None else None
        )
        ctx.thread_state[("sorted", i)] = sorted_block
        count = cfg.oversample * max(cfg.num_threads - 1, 1)
        sample = None
        if sorted_block is not None and sorted_block.size:
            positions = (np.arange(1, count + 1) * sorted_block.size) // (count + 1)
            sample = sorted_block[np.minimum(positions, sorted_block.size - 1)].copy()
        yield Post(
            DataObject(
                "sample",
                payload=sample,
                meta={"i": i},
                declared_size=8.0 * count,
            )
        )


class _Splitters(MergeOperation):
    """Gather samples, choose splitters, broadcast them to all workers."""

    def __init__(self, app: "SampleSortApplication") -> None:
        self.app = app

    def initial_state(self, ctx) -> list:
        """Sample accumulator."""
        return []

    def combine(self, ctx, state, obj):
        """Collect one worker's sample."""
        yield Compute(sort_handling_spec(), None)
        if obj.payload is not None:
            state.append(obj.payload)

    def finalize(self, ctx, state):
        """Choose the splitters and broadcast them to every worker."""
        cfg = self.app.cfg
        splitters = None
        if state:
            pool = np.concatenate(state)

            def kernel():
                return choose_splitters(pool, cfg.num_threads)

            splitters = yield Compute(
                local_sort_spec(int(pool.size)), kernel
            )
        else:
            yield Compute(sort_handling_spec(), None)
        yield Post(
            DataObject(
                "splitters",
                payload=splitters,
                declared_size=8.0 * max(cfg.num_threads - 1, 0),
            )
        )


class _Partition(LeafOperation):
    """Cut the sorted local block and send run ``j`` to worker ``j``."""

    def __init__(self, app: "SampleSortApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        """Partition the sorted block; send run ``j`` to worker ``j``."""
        cfg = self.app.cfg
        i = ctx.thread_index
        block = None
        for key, value in list(ctx.thread_state.items()):
            if isinstance(key, tuple) and key[0] == "sorted":
                block = value
                i = key[1]
        splitters = obj.payload
        size = cfg.block_size(i)

        def kernel():
            return partition_by_splitters(block, splitters)

        runs = yield Compute(
            partition_spec(size, cfg.num_threads),
            kernel if (block is not None and splitters is not None) else None,
        )
        uniform = 8.0 * size / cfg.num_threads
        for j in range(cfg.num_threads):
            payload = None
            declared = uniform
            if runs is not None:
                payload = runs[j]
                declared = 8.0 * float(runs[j].size)
            yield Post(
                DataObject(
                    "run",
                    payload=payload,
                    meta={"src": i, "dest": j},
                    declared_size=declared,
                )
            )


class _Exchange(StreamOperation):
    """Per-destination gate: merge the ``w`` runs arriving at this worker."""

    def __init__(self, app: "SampleSortApplication") -> None:
        self.app = app

    def instance_key(self, obj: DataObject) -> Any:
        """One exchange instance per destination worker."""
        return obj.get("dest")

    def initial_state(self, ctx) -> dict:
        """Run accumulator for this destination."""
        return {"runs": [], "count": 0}

    def combine(self, ctx, state, obj):
        """Collect runs; merge and forward once all workers reported."""
        cfg = self.app.cfg
        yield Compute(sort_handling_spec(), None)
        state["count"] += 1
        if obj.payload is not None:
            state["runs"].append(obj.payload)
        if state["count"] != cfg.num_threads:
            return
        dest = obj.get("dest")
        runs = state["runs"]
        total = int(sum(run.size for run in runs)) if runs else 0

        def kernel():
            merged = np.concatenate([r for r in runs if r.size]) if total else np.empty(0)
            merged.sort(kind="mergesort")
            return merged

        expected = cfg.block_size(dest)
        merged = yield Compute(
            merge_runs_spec(total if runs else expected, cfg.num_threads),
            kernel if runs else None,
        )
        declared = 8.0 * (float(total) if runs else float(expected))
        yield Post(
            DataObject(
                "sorted_run",
                payload=merged,
                meta={"dest": dest},
                declared_size=declared,
            )
        )
        ctx.finish_instance()


class _Gather(StreamOperation):
    """Concatenate the per-worker sorted runs in destination order."""

    def __init__(self, app: "SampleSortApplication") -> None:
        self.app = app

    def instance_key(self, obj: DataObject) -> Any:
        """A single global gather instance."""
        return "gather"

    def initial_state(self, ctx) -> dict:
        """Sorted-run accumulator keyed by destination index."""
        return {}

    def combine(self, ctx, state, obj):
        """Assemble the final array once every run has arrived."""
        cfg = self.app.cfg
        yield Compute(sort_handling_spec(), None)
        state[obj.get("dest")] = obj.payload
        if len(state) != cfg.num_threads:
            return
        if all(v is not None for v in state.values()):
            self.app.result = np.concatenate(
                [state[j] for j in range(cfg.num_threads)]
            )
        ctx.finish_instance()


# --------------------------------------------------------------------------
# the application object
# --------------------------------------------------------------------------


class SampleSortApplication:
    """Parallel sample sort, runnable on any execution engine."""

    def __init__(self, cfg: SampleSortConfig) -> None:
        self.cfg = cfg
        self.data: Optional[np.ndarray] = None
        if cfg.mode.allocates:
            rng = np.random.default_rng(cfg.seed)
            self.data = rng.standard_normal(cfg.m)
        self.result: Optional[np.ndarray] = None
        self._runtime: Optional[Runtime] = None

    # --------------------------------------------------- Application proto
    def build_graph(self) -> FlowGraph:
        cfg = self.cfg
        g = FlowGraph(f"samplesort-m{cfg.m}-w{cfg.num_threads}")
        g.add_split("scatter", lambda: _Scatter(self), group="main")
        g.add_leaf("localsort", lambda: _LocalSort(self), group="workers")
        g.add_merge(
            "splitters", lambda: _Splitters(self), group="main", closes="scatter"
        )
        g.add_leaf("partition", lambda: _Partition(self), group="workers")
        g.add_keyed_stream("exchange", lambda: _Exchange(self), group="workers")
        g.add_keyed_stream("gather", lambda: _Gather(self), group="main")
        g.connect("scatter", "localsort", Modulo("i"))
        g.connect("localsort", "splitters", Constant(0))
        g.connect("splitters", "partition", Broadcast())
        g.connect("partition", "exchange", Modulo("dest"))
        g.connect("exchange", "gather", Constant(0))
        return g

    def build_deployment(self) -> Deployment:
        cfg = self.cfg
        dep = Deployment(cfg.num_nodes)
        dep.add_singleton("main", 0)
        dep.add_group(
            "workers",
            [cfg.node_of_worker(t) for t in range(cfg.num_threads)],
        )
        return dep

    def bootstrap(self, runtime: Runtime) -> None:
        self._runtime = runtime
        runtime.inject("scatter", DataObject("sort_job", meta={"m": self.cfg.m}))

    def migration_planner(self):
        return None

    # -------------------------------------------------------- verification
    def verify(self) -> None:
        """Check the distributed sort against ``np.sort``."""
        if self.data is None or self.result is None:
            raise VerificationError(
                "sample sort ran without payloads; nothing to verify"
            )
        if self.result.size != self.data.size:
            raise VerificationError(
                f"result has {self.result.size} keys, expected {self.data.size}"
            )
        expected = np.sort(self.data)
        if not np.array_equal(self.result, expected):
            raise VerificationError("sample sort produced an unsorted result")
