"""Kernels and cost model for the parallel sample-sort application.

Cost accounting uses flop-equivalents for comparison-based work:

* local sort of ``m`` keys: ``SORT_COST * m * log2(m)``,
* partitioning ``m`` keys over ``w`` splitters: ``PARTITION_COST * m``
  (binary search per key is ``log2 w`` but the memory traffic dominates),
* ``w``-way merge of ``m`` keys: ``MERGE_COST * m * log2(max(w, 2))``.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.cpumodel.machines import MachineProfile
from repro.dps.operations import KernelSpec
from repro.sim.providers import MachineCostModel
from repro.testbed.noise import DEFAULT_KERNEL_BIAS, KernelBias, NoisySampler

SORT_COST = 6.0
PARTITION_COST = 4.0
MERGE_COST = 5.0
#: flop-equivalents for handling one control data object
SORT_HANDLING_FLOPS = 2000.0


# --------------------------------------------------------------------------
# cost specifications
# --------------------------------------------------------------------------


def local_sort_spec(m: int) -> KernelSpec:
    """Sorting ``m`` keys locally."""
    logm = math.log2(max(m, 2))
    return KernelSpec(
        "local_sort",
        flops=SORT_COST * m * logm,
        working_set=8.0 * 2.0 * m,
        params={"m": m},
    )


def partition_spec(m: int, w: int) -> KernelSpec:
    """Partitioning ``m`` sorted keys into ``w`` destination runs."""
    return KernelSpec(
        "partition",
        flops=PARTITION_COST * m,
        working_set=8.0 * 2.0 * m,
        params={"m": m, "w": w},
    )


def merge_runs_spec(m: int, w: int) -> KernelSpec:
    """Merging ``w`` sorted runs totalling ``m`` keys."""
    return KernelSpec(
        "merge_runs",
        flops=MERGE_COST * m * math.log2(max(w, 2)),
        working_set=8.0 * 2.0 * m,
        params={"m": m, "w": w},
    )


def sort_handling_spec(objects: int = 1) -> KernelSpec:
    """Framework handling cost for ``objects`` control data objects."""
    return KernelSpec(
        "overhead", flops=SORT_HANDLING_FLOPS * objects, working_set=4096.0
    )


def sample_sort_rate_factors(
    machine: MachineProfile,
    m: int,
    w: int,
    bias: Optional[KernelBias] = None,
    samples: int = 5,
    seed: int = 1,
) -> dict[str, float]:
    """Benchmark the ground truth once per kernel, as the paper calibrates."""
    bias = bias or DEFAULT_KERNEL_BIAS
    sampler = NoisySampler(seed, bias.sigma)
    specs = {
        "local_sort": local_sort_spec(m),
        "partition": partition_spec(m, w),
        "merge_runs": merge_runs_spec(m, w),
        "overhead": sort_handling_spec(),
    }
    factors: dict[str, float] = {}
    for name, spec in specs.items():
        model = machine.seconds_for(spec.flops, spec.working_set)
        if model <= 0.0:
            factors[name] = 1.0
            continue
        measured = [
            model * bias.factor(name) * sampler.sample() for _ in range(samples)
        ]
        factors[name] = float(np.mean(measured)) / model
    return factors


class SampleSortCostModel(MachineCostModel):
    """PDEXEC cost model for the sample-sort kernels."""

    def __init__(
        self,
        machine: MachineProfile,
        m: int,
        w: int,
        bias: Optional[KernelBias] = None,
        samples: int = 5,
        seed: int = 1,
        rate_factors: Optional[Mapping[str, float]] = None,
    ) -> None:
        if rate_factors is None:
            rate_factors = sample_sort_rate_factors(
                machine, m, w, bias=bias, samples=samples, seed=seed
            )
        super().__init__(machine, rate_factors=rate_factors)
        self.m = m
        self.w = w


# --------------------------------------------------------------------------
# numpy helpers
# --------------------------------------------------------------------------


def choose_splitters(samples: np.ndarray, w: int) -> np.ndarray:
    """Pick ``w - 1`` splitters from the gathered sample set."""
    ordered = np.sort(np.asarray(samples, dtype=float).ravel())
    if w <= 1 or ordered.size == 0:
        return np.empty(0)
    # Regular sampling of the sorted sample set.
    positions = (np.arange(1, w) * ordered.size) // w
    return ordered[np.minimum(positions, ordered.size - 1)]


def partition_by_splitters(
    block: np.ndarray, splitters: np.ndarray
) -> list[np.ndarray]:
    """Cut a *sorted* block into ``len(splitters) + 1`` contiguous runs."""
    bounds = np.searchsorted(block, splitters, side="right")
    return np.split(block, bounds)
