"""Numerical kernels and cost model for the Jacobi stencil application.

The application iterates a 5-point Jacobi relaxation on an ``n x n`` grid
with Dirichlet boundaries (edge rows/columns stay fixed).  The grid is cut
into horizontal stripes; each sweep of a stripe needs one *halo row* from
each vertical neighbour — the "neighborhood exchange" communication
pattern the paper cites as a natural fit for DPS relative-index routing
(section 2).
"""

from __future__ import annotations

from typing import Mapping, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.cpumodel.machines import MachineProfile
from repro.dps.operations import KernelSpec
from repro.errors import ConfigurationError
from repro.sim.providers import MachineCostModel
from repro.testbed.noise import DEFAULT_KERNEL_BIAS, KernelBias, NoisySampler

#: flop-equivalents charged for handling one control data object
HALO_HANDLING_FLOPS = 2000.0


# --------------------------------------------------------------------------
# numpy kernels
# --------------------------------------------------------------------------


def jacobi_sweep(
    stripe: np.ndarray,
    top: Optional[np.ndarray],
    bottom: Optional[np.ndarray],
) -> tuple[np.ndarray, float]:
    """One Jacobi relaxation of ``stripe`` given its halo rows.

    ``top`` is the grid row directly above the stripe (``None`` when the
    stripe contains the global top boundary row, which stays fixed);
    ``bottom`` likewise below.  Returns the updated stripe and the maximum
    absolute change (the stripe-local residual).
    """
    ext_top = stripe[:1] if top is None else top.reshape(1, -1)
    ext_bot = stripe[-1:] if bottom is None else bottom.reshape(1, -1)
    ext = np.vstack([ext_top, stripe, ext_bot])
    new = stripe.copy()
    new[:, 1:-1] = 0.25 * (
        ext[:-2, 1:-1] + ext[2:, 1:-1] + ext[1:-1, :-2] + ext[1:-1, 2:]
    )
    # Global boundary rows are Dirichlet-fixed.
    if top is None:
        new[0] = stripe[0]
    if bottom is None:
        new[-1] = stripe[-1]
    residual = float(np.max(np.abs(new - stripe))) if stripe.size else 0.0
    return new, residual


def reference_jacobi(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential reference: ``iterations`` Jacobi sweeps of the full grid."""
    g = np.array(grid, dtype=float, copy=True)
    if g.ndim != 2:
        raise ConfigurationError("reference_jacobi expects a 2-D grid")
    for _ in range(int(iterations)):
        new = g.copy()
        new[1:-1, 1:-1] = 0.25 * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:]
        )
        g = new
    return g


def initial_grid(n: int, seed: int = 7) -> np.ndarray:
    """A reproducible "hot plate": zero interior, heated top edge plus noise.

    The deterministic pattern keeps residuals meaningful (pure random
    fields average out almost immediately).
    """
    rng = np.random.default_rng(seed)
    grid = rng.standard_normal((n, n)) * 0.01
    grid[0, :] = 1.0
    grid[-1, :] = 0.0
    grid[:, 0] = 0.0
    grid[:, -1] = 0.0
    return grid


# --------------------------------------------------------------------------
# cost specifications
# --------------------------------------------------------------------------


def jacobi_spec(rows: int, n: int) -> KernelSpec:
    """One Jacobi sweep of a ``rows x n`` stripe (4 flops per point)."""
    return KernelSpec(
        "jacobi",
        flops=4.0 * rows * n,
        working_set=8.0 * 3.0 * rows * n,
        params={"rows": rows, "n": n},
    )


def halo_handling_spec(objects: int = 1) -> KernelSpec:
    """Framework handling cost for ``objects`` control/halo data objects."""
    return KernelSpec(
        "overhead", flops=HALO_HANDLING_FLOPS * objects, working_set=4096.0
    )


def stencil_rate_factors(
    machine: MachineProfile,
    rows: int,
    n: int,
    bias: Optional[KernelBias] = None,
    samples: int = 5,
    seed: int = 1,
) -> dict[str, float]:
    """Fit per-kernel rate factors by benchmarking the ground truth.

    The stencil analogue of
    :func:`repro.apps.lu.costs.benchmark_rate_factors`: time each kernel a
    few times on the (noisy, biased) virtual machine and return
    ``mean(measured) / model``.
    """
    bias = bias or DEFAULT_KERNEL_BIAS
    sampler = NoisySampler(seed, bias.sigma)
    specs = {
        "jacobi": jacobi_spec(rows, n),
        "overhead": halo_handling_spec(),
    }
    factors: dict[str, float] = {}
    for name, spec in specs.items():
        model = machine.seconds_for(spec.flops, spec.working_set)
        if model <= 0.0:
            factors[name] = 1.0
            continue
        measured = [
            model * bias.factor(name) * sampler.sample() for _ in range(samples)
        ]
        factors[name] = float(np.mean(measured)) / model
    return factors


class StencilCostModel(MachineCostModel):
    """PDEXEC cost model for the stencil kernels, calibrated as the paper
    calibrates: by timing each kernel once per target machine."""

    def __init__(
        self,
        machine: MachineProfile,
        rows: int,
        n: int,
        bias: Optional[KernelBias] = None,
        samples: int = 5,
        seed: int = 1,
        rate_factors: Optional[Mapping[str, float]] = None,
    ) -> None:
        if rate_factors is None:
            rate_factors = stencil_rate_factors(
                machine, rows, n, bias=bias, samples=samples, seed=seed
            )
        super().__init__(machine, rate_factors=rate_factors)
        self.rows = rows
        self.n = n
