"""Jacobi stencil application: iterative neighborhood exchange under DPS.

A third application domain beside LU and matmul, exercising the DPS
features the paper highlights for iterative codes:

* **relative-index neighbourhood routing** — each stripe exchanges halo
  rows with its vertical neighbours every iteration ("Communication
  patterns such as neighborhood exchanges can easily be specified by using
  relative thread indices", section 2);
* **keyed streams** as per-(stripe, iteration) synchronization gates in
  the pipelined variant;
* **barrier vs pipelined** flow-graph variants, mirroring the paper's
  basic/pipelined LU comparison — and, in the barrier variant, **dynamic
  thread removal** at iteration boundaries.

Unlike LU, the stencil's per-iteration work is *constant*, so its dynamic
efficiency profile is flat and node removal costs running time
proportionally — a useful contrast when studying allocation policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.apps.stencil.kernels import (
    halo_handling_spec,
    initial_grid,
    jacobi_spec,
    jacobi_sweep,
    reference_jacobi,
)
from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.malleability import (
    STATIC,
    AllocationSchedule,
    MigrationPlanner,
    modulo_owner_planner,
)
from repro.dps.operations import (
    Compute,
    LeafOperation,
    Post,
    RemoveThreads,
    StreamOperation,
)
from repro.dps.routing import Constant, Modulo
from repro.dps.runtime import Runtime
from repro.errors import ConfigurationError, VerificationError
from repro.sim.modes import SimulationMode


@dataclass(frozen=True)
class StencilConfig:
    """One Jacobi stencil run.

    Parameters
    ----------
    n:
        Grid side; the grid is ``n x n`` with Dirichlet boundaries.
    stripes:
        Number of horizontal stripes (must divide ``n``); stripe ``i`` is
        owned by worker thread ``i % live_workers``.
    iterations:
        Number of Jacobi sweeps.
    num_threads / num_nodes:
        Worker thread count and node count (thread ``t`` on node
        ``t % num_nodes``).
    barrier:
        ``True``: iterations synchronize through the main node (the
        "basic" variant), which cleanly separates iterations and permits
        dynamic thread removal.  ``False``: pipelined halo exchange
        directly between workers through keyed-stream gates.
    mode:
        Payload/duration handling (see :class:`SimulationMode`).
    schedule:
        Dynamic-allocation strategy; only valid with ``barrier=True``.
        Event phases are iteration labels (``"iter1"``...).
    """

    n: int = 128
    stripes: int = 4
    iterations: int = 8
    num_threads: int = 4
    num_nodes: int = 2
    barrier: bool = False
    mode: SimulationMode = SimulationMode.PDEXEC
    seed: int = 7
    schedule: AllocationSchedule = STATIC

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ConfigurationError(f"grid side n must be >= 4, got {self.n}")
        if self.stripes < 1:
            raise ConfigurationError("need at least one stripe")
        if self.n % self.stripes != 0:
            raise ConfigurationError(
                f"stripes={self.stripes} must divide n={self.n}"
            )
        if self.iterations < 1:
            raise ConfigurationError("need at least one iteration")
        if self.num_nodes < 1 or self.num_threads < self.num_nodes:
            raise ConfigurationError(
                "need >= 1 node and at least one worker thread per node"
            )
        if self.schedule.events and not self.barrier:
            raise ConfigurationError(
                "dynamic thread removal requires the barrier variant "
                "(iterations must be cleanly separated)"
            )
        for event in self.schedule.events:
            if event.group != "workers":
                raise ConfigurationError(
                    f"stencil schedules may only remove 'workers' threads, "
                    f"got {event.group!r}"
                )
            removed = set(event.thread_indices)
            if not removed.issubset(range(self.num_threads)):
                raise ConfigurationError(
                    f"schedule removes unknown worker threads: {sorted(removed)}"
                )
        if self.schedule.total_removed >= self.num_threads:
            raise ConfigurationError("schedule would remove every worker thread")

    @property
    def rows(self) -> int:
        """Rows per stripe."""
        return self.n // self.stripes

    @property
    def stripe_bytes(self) -> float:
        """Payload bytes of one stripe."""
        return 8.0 * self.rows * self.n

    @property
    def halo_bytes(self) -> float:
        """Payload bytes of one halo row."""
        return 8.0 * self.n

    def node_of_worker(self, t: int) -> int:
        """Deployment rule: worker thread ``t`` lives on this node."""
        return t % self.num_nodes


# --------------------------------------------------------------------------
# operations
# --------------------------------------------------------------------------


class _Start(LeafOperation):
    """Distribute the initial stripes to their owner threads."""

    def __init__(self, app: "StencilApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        """Post one ``stripe_init`` object per stripe."""
        cfg = self.app.cfg
        if not cfg.barrier:
            ctx.mark_phase("iter1")
        grid = self.app.grid
        for i in range(cfg.stripes):
            payload = None
            if grid is not None:
                payload = grid[i * cfg.rows : (i + 1) * cfg.rows].copy()
            yield Compute(halo_handling_spec(), None)
            yield Post(
                DataObject(
                    "stripe_init",
                    payload=payload,
                    meta={"i": i},
                    declared_size=cfg.stripe_bytes,
                )
            )


class _Load(LeafOperation):
    """Store a stripe locally and emit the iteration-1 ingredients."""

    def __init__(self, app: "StencilApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        """Store the stripe and emit the first iteration's inputs."""
        cfg = self.app.cfg
        i = obj.get("i")
        stripe = obj.payload
        ctx.thread_state[("stripe", i)] = stripe
        yield Compute(halo_handling_spec(), None)
        if cfg.barrier:
            edges = None
            if stripe is not None:
                edges = (stripe[0].copy(), stripe[-1].copy())
            yield Post(
                DataObject(
                    "loaded",
                    payload=edges,
                    meta={"i": i, "k": 0, "residual": 0.0},
                    declared_size=2.0 * cfg.halo_bytes,
                )
            )
            return
        # Pipelined: my own ready token, plus my edge rows as the
        # neighbours' halos, all for iteration 1.
        yield from _post_halos(
            self.app,
            i,
            1,
            None if stripe is None else stripe[0],
            None if stripe is None else stripe[-1],
        )
        yield Post(
            DataObject("token", meta={"i": i, "k": 1}, declared_size=0.0),
            to="gate@1",
        )


def _post_halos(
    app: "StencilApplication",
    i: int,
    k: int,
    top_row: Optional[np.ndarray],
    bottom_row: Optional[np.ndarray],
):
    """Post stripe ``i``'s edge rows to its neighbours' iteration-``k`` gates.

    The *top* row of stripe ``i`` is the *bottom* halo of stripe ``i-1``;
    the *bottom* row is the *top* halo of stripe ``i+1``.
    """
    cfg = app.cfg
    gate = f"gate@{k}"
    if i > 0:
        yield Post(
            DataObject(
                "halo",
                payload=None if top_row is None else np.array(top_row, copy=True),
                meta={"i": i - 1, "k": k, "side": "bottom"},
                declared_size=cfg.halo_bytes,
            ),
            to=gate,
        )
    if i < cfg.stripes - 1:
        yield Post(
            DataObject(
                "halo",
                payload=None
                if bottom_row is None
                else np.array(bottom_row, copy=True),
                meta={"i": i + 1, "k": k, "side": "top"},
                declared_size=cfg.halo_bytes,
            ),
            to=gate,
        )


class _HaloGate(StreamOperation):
    """Keyed stream gating one (stripe, iteration) sweep on its inputs.

    Expects the stripe's own ready token plus one halo per existing
    vertical neighbour; when complete it triggers the sweep locally.
    """

    def __init__(self, app: "StencilApplication") -> None:
        self.app = app

    def instance_key(self, obj: DataObject) -> Any:
        """One gate instance per (stripe, iteration)."""
        return (obj.get("i"), obj.get("k"))

    def initial_state(self, ctx) -> dict:
        """Halo accumulator: the two neighbour rows plus an input count."""
        return {"top": None, "bottom": None, "count": 0}

    def _expected(self, i: int) -> int:
        cfg = self.app.cfg
        neighbours = (1 if i > 0 else 0) + (1 if i < cfg.stripes - 1 else 0)
        return 1 + neighbours

    def combine(self, ctx, state, obj):
        """Collect halos/token; trigger the sweep when all inputs are in."""
        yield Compute(halo_handling_spec(), None)
        if obj.kind == "halo":
            state[obj.get("side")] = obj.payload
        state["count"] += 1
        i, k = obj.get("i"), obj.get("k")
        if state["count"] == self._expected(i):
            payload = None
            if self.app.cfg.mode.allocates:
                payload = (state["top"], state["bottom"])
            yield Post(
                DataObject(
                    "sweep_req",
                    payload=payload,
                    meta={"i": i, "k": k},
                    declared_size=0.0,
                )
            )
            ctx.finish_instance()


class _Sweep(LeafOperation):
    """One Jacobi sweep of one stripe; emits next-iteration ingredients."""

    def __init__(self, app: "StencilApplication") -> None:
        self.app = app

    def run(self, ctx, obj):
        """Relax the stripe once; emit next-iteration inputs and progress."""
        cfg = self.app.cfg
        i, k = obj.get("i"), obj.get("k")
        stripe = ctx.thread_state.get(("stripe", i))
        top: Optional[np.ndarray] = None
        bottom: Optional[np.ndarray] = None
        if obj.payload is not None:
            top, bottom = obj.payload

        def kernel():
            return jacobi_sweep(stripe, top, bottom)

        outcome = yield Compute(
            jacobi_spec(cfg.rows, cfg.n),
            kernel if stripe is not None else None,
        )
        residual = 0.0
        new = None
        if outcome is not None:
            new, residual = outcome
            ctx.thread_state[("stripe", i)] = new
        if cfg.barrier:
            edges = None
            if new is not None:
                edges = (new[0].copy(), new[-1].copy())
            yield Post(
                DataObject(
                    "stripe_done",
                    payload=edges,
                    meta={"i": i, "k": k, "residual": residual},
                    declared_size=2.0 * cfg.halo_bytes,
                ),
            )
            return
        if k < cfg.iterations:
            yield from _post_halos(
                self.app,
                i,
                k + 1,
                None if new is None else new[0],
                None if new is None else new[-1],
            )
            yield Post(
                DataObject("token", meta={"i": i, "k": k + 1}, declared_size=0.0),
                to=f"gate@{k + 1}",
            )
        yield Post(
            DataObject(
                "progress",
                meta={"i": i, "k": k, "residual": residual},
                declared_size=0.0,
            ),
            to="collect",
        )


class _PipelinedCollector(StreamOperation):
    """Keyed per-iteration progress collector (pipelined variant).

    Receives one ``progress`` notification per (stripe, iteration); when
    an iteration has fully completed it records the residual and marks the
    next iteration's phase boundary.  Iterations overlap in the pipelined
    variant, so the boundary is approximate — the same blur the paper's
    pipelined LU graph exhibits.
    """

    def __init__(self, app: "StencilApplication") -> None:
        self.app = app

    def instance_key(self, obj: DataObject) -> Any:
        """One collector instance per iteration."""
        return obj.get("k")

    def initial_state(self, ctx) -> dict:
        """Per-iteration progress accumulator."""
        return {"residual": 0.0, "count": 0}

    def combine(self, ctx, state, obj):
        """Count per-stripe completions; mark the next phase when full."""
        app = self.app
        cfg = app.cfg
        yield Compute(halo_handling_spec(), None)
        state["count"] += 1
        state["residual"] = max(state["residual"], obj.get("residual", 0.0))
        k = obj.get("k")
        if state["count"] != cfg.stripes:
            return
        app.residuals[k] = state["residual"]
        app.iteration_times[k] = ctx.now
        if k < cfg.iterations:
            ctx.mark_phase(f"iter{k + 1}")
        ctx.finish_instance()


class _BarrierCollector(StreamOperation):
    """Per-iteration barrier on the main thread (barrier variant).

    The vertex ``collect@k`` gathers iteration ``k``'s completions
    (``k=0``: the initial stripe loads), performs any scheduled thread
    removal, then dispatches iteration ``k+1`` — the clean separation of
    iterations the paper relies on for its thread-removal experiments.
    """

    def __init__(self, app: "StencilApplication", k: int) -> None:
        self.app = app
        self.k = k

    def instance_key(self, obj: DataObject) -> Any:
        """All of iteration ``k``'s traffic shares one barrier instance."""
        return self.k

    def initial_state(self, ctx) -> dict:
        """Barrier accumulator: per-stripe edge rows and progress."""
        return {"edges": {}, "residual": 0.0, "count": 0}

    def combine(self, ctx, state, obj):
        """Gather the iteration; then remove threads and dispatch the next."""
        app = self.app
        cfg = app.cfg
        k = self.k
        yield Compute(halo_handling_spec(), None)
        state["count"] += 1
        state["edges"][obj.get("i")] = obj.payload
        state["residual"] = max(state["residual"], obj.get("residual", 0.0))
        if state["count"] != cfg.stripes:
            return
        if k >= 1:
            app.residuals[k] = state["residual"]
            app.iteration_times[k] = ctx.now
            for event in cfg.schedule.removals_after(f"iter{k}"):
                yield Compute(halo_handling_spec(), None)
                yield RemoveThreads(event.group, event.thread_indices)
        if k < cfg.iterations:
            ctx.mark_phase(f"iter{k + 1}")
            yield from self._dispatch(state["edges"], k + 1)
        ctx.finish_instance()

    def _dispatch(self, edges: dict, k: int):
        """Send every stripe its iteration-``k`` sweep request."""
        cfg = self.app.cfg
        for i in range(cfg.stripes):
            payload = None
            if cfg.mode.allocates:
                above = edges.get(i - 1)
                below = edges.get(i + 1)
                payload = (
                    None if above is None else above[1],
                    None if below is None else below[0],
                )
            yield Post(
                DataObject(
                    "sweep_go",
                    payload=payload,
                    meta={"i": i, "k": k},
                    declared_size=2.0 * cfg.halo_bytes,
                ),
                to=f"sweep@{k}",
            )


# --------------------------------------------------------------------------
# the application object
# --------------------------------------------------------------------------


class StencilApplication:
    """Jacobi heat relaxation, runnable on any execution engine."""

    def __init__(self, cfg: StencilConfig) -> None:
        self.cfg = cfg
        self.grid: Optional[np.ndarray] = None
        if cfg.mode.allocates:
            self.grid = initial_grid(cfg.n, seed=cfg.seed)
        self.original = self.grid.copy() if self.grid is not None else None
        #: per-iteration maximum absolute update (filled during the run)
        self.residuals: dict[int, float] = {}
        #: simulation time at which each iteration completed
        self.iteration_times: dict[int, float] = {}
        self._runtime: Optional[Runtime] = None

    # --------------------------------------------------- Application proto
    def build_graph(self) -> FlowGraph:
        """Construct the stencil flow graph.

        The iteration loop is unrolled into per-iteration vertices — the
        DPS idiom for iterative algorithms ("the gray part is repeated for
        every column of blocks in the matrix", paper Fig. 5).
        """
        cfg = self.cfg
        variant = "barrier" if cfg.barrier else "pipelined"
        g = FlowGraph(f"stencil-n{cfg.n}-s{cfg.stripes}-{variant}")
        g.add_leaf("start", lambda: _Start(self), group="main")
        g.add_leaf("load", lambda: _Load(self), group="workers")
        g.connect("start", "load", Modulo("i"))
        if cfg.barrier:
            for k in range(cfg.iterations + 1):
                g.add_keyed_stream(
                    f"collect@{k}",
                    lambda k=k: _BarrierCollector(self, k),
                    group="main",
                )
            g.connect("load", "collect@0", Constant(0))
            for k in range(1, cfg.iterations + 1):
                g.add_leaf(f"sweep@{k}", lambda: _Sweep(self), group="workers")
                g.connect(f"collect@{k - 1}", f"sweep@{k}", Modulo("i"))
                g.connect(f"sweep@{k}", f"collect@{k}", Constant(0))
            return g
        g.add_keyed_stream(
            "collect", lambda: _PipelinedCollector(self), group="main"
        )
        for k in range(1, cfg.iterations + 1):
            g.add_keyed_stream(
                f"gate@{k}", lambda: _HaloGate(self), group="workers"
            )
            g.add_leaf(f"sweep@{k}", lambda: _Sweep(self), group="workers")
        for k in range(1, cfg.iterations + 1):
            g.connect(f"gate@{k}", f"sweep@{k}", Modulo("i"))
            g.connect(f"sweep@{k}", "collect", Constant(0))
            if k < cfg.iterations:
                g.connect(f"sweep@{k}", f"gate@{k + 1}", Modulo("i"))
        g.connect("load", "gate@1", Modulo("i"))
        return g

    def build_deployment(self) -> Deployment:
        cfg = self.cfg
        dep = Deployment(cfg.num_nodes)
        dep.add_singleton("main", 0)
        dep.add_group(
            "workers",
            [cfg.node_of_worker(t) for t in range(cfg.num_threads)],
        )
        return dep

    def bootstrap(self, runtime: Runtime) -> None:
        self._runtime = runtime
        runtime.inject(
            "start", DataObject("stencil_job", meta={"n": self.cfg.n})
        )

    def migration_planner(self) -> Optional[MigrationPlanner]:
        cfg = self.cfg

        def key_index(key: Any) -> Optional[int]:
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "stripe":
                return int(key[1])
            return None

        def size_of(key: Any, value: Any) -> float:
            if isinstance(key, tuple) and key and key[0] == "stripe":
                return cfg.stripe_bytes
            return float(getattr(value, "nbytes", 0.0))

        return modulo_owner_planner(key_index, size_of)

    # -------------------------------------------------------- verification
    def gather_grid(self, runtime: Optional[Runtime] = None) -> np.ndarray:
        """Reassemble the full grid from the live workers' stripe states."""
        runtime = runtime or self._runtime
        if runtime is None:
            raise VerificationError("application has not been run yet")
        if self.original is None:
            raise VerificationError(
                "gather_grid requires an allocating mode (payloads were elided)"
            )
        cfg = self.cfg
        grid = np.empty((cfg.n, cfg.n))
        found = 0
        for thread in runtime.live_threads("workers"):
            for key, value in thread.state.items():
                if isinstance(key, tuple) and key[0] == "stripe":
                    i = key[1]
                    grid[i * cfg.rows : (i + 1) * cfg.rows] = value
                    found += 1
        if found != cfg.stripes:
            raise VerificationError(
                f"expected {cfg.stripes} stripes in thread states, found {found}"
            )
        return grid

    def verify(
        self, runtime: Optional[Runtime] = None, atol: float = 1e-12
    ) -> float:
        """Compare the distributed result against the sequential reference."""
        grid = self.gather_grid(runtime)
        expected = reference_jacobi(self.original, self.cfg.iterations)
        error = float(np.max(np.abs(grid - expected)))
        if error > atol:
            raise VerificationError(
                f"stencil result deviates from the sequential reference by "
                f"{error:.3e} (atol {atol:.1e})"
            )
        return error
