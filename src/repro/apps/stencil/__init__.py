"""Jacobi stencil application: neighborhood exchange over DPS flow graphs."""

from repro.apps.stencil.app import StencilApplication, StencilConfig
from repro.apps.stencil.kernels import (
    StencilCostModel,
    initial_grid,
    jacobi_spec,
    jacobi_sweep,
    reference_jacobi,
    stencil_rate_factors,
)

__all__ = [
    "StencilApplication",
    "StencilConfig",
    "StencilCostModel",
    "initial_grid",
    "jacobi_spec",
    "jacobi_sweep",
    "reference_jacobi",
    "stencil_rate_factors",
]
