"""Virtual cluster description for the ground-truth testbed."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpumodel.machines import MachineProfile, ULTRASPARC_II_440
from repro.cpumodel.timeslice import TimesliceParams
from repro.netmodel.packet import PacketNetworkParams
from repro.netmodel.params import FAST_ETHERNET, NetworkParams
from repro.util.validation import check_positive


@dataclass(frozen=True)
class VirtualCluster:
    """A homogeneous cluster: nodes, interconnect, and fidelity knobs.

    The defaults describe the paper's evaluation platform: Sun
    workstations with 440 MHz UltraSparc II processors on switched Fast
    Ethernet.
    """

    num_nodes: int = 8
    machine: MachineProfile = ULTRASPARC_II_440
    network: NetworkParams = FAST_ETHERNET
    packet_params: PacketNetworkParams = field(default_factory=PacketNetworkParams)
    timeslice_params: TimesliceParams = field(default_factory=TimesliceParams)
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_nodes", self.num_nodes)

    def with_nodes(self, num_nodes: int) -> "VirtualCluster":
        """Same cluster, different node count."""
        from dataclasses import replace

        return replace(self, num_nodes=num_nodes)

    def with_seed(self, seed: int) -> "VirtualCluster":
        """Same cluster, different noise seed (another 'measurement run')."""
        from dataclasses import replace

        return replace(self, seed=seed)
