"""The ground-truth virtual cluster: the stand-in for the paper's testbed.

The paper validates its simulator against measurements on a real cluster
of Sun workstations.  Without that hardware, this subpackage provides the
"reality" being predicted: the same DPS runtime executed under strictly
richer models — max-min-fair chunked networking with seeded jitter
(:class:`~repro.netmodel.packet.PacketNetwork`), timesliced CPUs with
context-switch overhead and OS noise
(:class:`~repro.cpumodel.timeslice.TimesliceCpuModel`), and per-kernel
systematic speed deviations from the machine profile
(:class:`~repro.testbed.executor.GroundTruthProvider`).

Prediction error in the reproduction therefore has the same character as
in the paper: genuine model mismatch plus run-to-run noise, not a model
compared against itself.
"""

from repro.testbed.cluster import VirtualCluster
from repro.testbed.noise import KernelBias, DEFAULT_KERNEL_BIAS
from repro.testbed.executor import GroundTruthProvider, TestbedExecutor, Measurement

__all__ = [
    "VirtualCluster",
    "KernelBias",
    "DEFAULT_KERNEL_BIAS",
    "GroundTruthProvider",
    "TestbedExecutor",
    "Measurement",
]
