"""The testbed executor: produces "measured" running times.

Runs the *same* application object as the simulator, over the richer
ground-truth models.  The resulting makespan plays the role of the paper's
measurements on the real cluster; the simulator's prediction is compared
against it in every validation bench (Figs. 8-13).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.apps.base import Application
from repro.cpumodel.timeslice import TimesliceCpuModel
from repro.des.kernel import Kernel
from repro.dps.backend import ExecutionBackend
from repro.dps.operations import Compute, OperationContext
from repro.dps.runtime import DurationProvider, Runtime, RunResult
from repro.dps.trace import TraceLevel
from repro.errors import ConfigurationError
from repro.netmodel.packet import PacketNetwork
from repro.testbed.cluster import VirtualCluster
from repro.testbed.noise import DEFAULT_KERNEL_BIAS, KernelBias, NoisySampler


class GroundTruthProvider(DurationProvider):
    """Atomic-step durations as the "real machine" produces them.

    Duration = profile prediction x systematic kernel bias x seeded
    per-invocation noise.  Kernels optionally really execute (payload
    correctness); their wall time is irrelevant — the virtual cluster is
    the timing authority.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        bias: Optional[KernelBias] = None,
        run_kernels: bool = True,
    ) -> None:
        self.cluster = cluster
        self.bias = bias or DEFAULT_KERNEL_BIAS
        self.run_kernels = run_kernels
        self._noise = NoisySampler(cluster.seed, self.bias.sigma)
        self.evaluations = 0

    def evaluate(self, compute: Compute, ctx: OperationContext) -> tuple[float, Any]:
        self.evaluations += 1
        spec = compute.spec
        base = self.cluster.machine.seconds_for(spec.flops, spec.working_set)
        duration = base * self.bias.factor(spec.name) * self._noise.sample()
        result = None
        if self.run_kernels and compute.fn is not None:
            result = compute.fn(*compute.args)
        return duration, result


@dataclass
class Measurement:
    """One "real execution" of an application on the virtual cluster."""

    #: the measured running time of the application [s]
    measured_time: float
    run: RunResult
    wall_time: float
    #: the runtime that executed the app (thread states, for verification)
    runtime: Optional[Runtime] = None


class TestbedExecutor:
    """Executes applications on the ground-truth virtual cluster."""

    __test__ = False  # starts with "Test" but is not a pytest class

    def __init__(
        self,
        cluster: VirtualCluster,
        bias: Optional[KernelBias] = None,
        run_kernels: bool = True,
        trace_level: TraceLevel = TraceLevel.SUMMARY,
        incremental: bool = True,
        verify_incremental: bool = False,
        backend: str = "scalar",
    ) -> None:
        if backend not in ("scalar", "soa"):
            raise ConfigurationError(
                f"unknown testbed backend {backend!r}; "
                "choose from ['scalar', 'soa']"
            )
        if backend == "soa" and not incremental:
            raise ConfigurationError(
                "the 'soa' testbed backend is incremental by construction; "
                "incremental=False requires the scalar backend"
            )
        self.cluster = cluster
        self.bias = bias or DEFAULT_KERNEL_BIAS
        self.run_kernels = run_kernels
        self.trace_level = trace_level
        self.incremental = incremental
        self.verify_incremental = verify_incremental
        self.backend = backend

    def build_backend(self) -> ExecutionBackend:
        """Fresh kernel + ground-truth models for one measurement run.

        ``backend="soa"`` swaps in the numpy structure-of-arrays models;
        they replay the scalar models' seeded noise draw-for-draw, so the
        measured times are identical (see ``docs/performance.md``).
        """
        kernel = Kernel()
        if self.backend == "soa":
            from repro.cpumodel.soa import TimesliceCpuModelSoA
            from repro.netmodel.soa import PacketNetworkSoA

            network: Any = PacketNetworkSoA(
                kernel,
                self.cluster.network,
                self.cluster.packet_params,
                seed=self.cluster.seed,
                verify_incremental=self.verify_incremental,
            )
            cpu: Any = TimesliceCpuModelSoA(
                kernel,
                self.cluster.timeslice_params,
                seed=self.cluster.seed,
                verify_incremental=self.verify_incremental,
            )
            return ExecutionBackend(kernel, cpu, network)
        network = PacketNetwork(
            kernel,
            self.cluster.network,
            self.cluster.packet_params,
            seed=self.cluster.seed,
            incremental=self.incremental,
            verify_incremental=self.verify_incremental,
        )
        cpu = TimesliceCpuModel(
            kernel,
            self.cluster.timeslice_params,
            seed=self.cluster.seed,
            incremental=self.incremental,
            verify_incremental=self.verify_incremental,
        )
        return ExecutionBackend(kernel, cpu, network)

    def run(self, app: Application) -> Measurement:
        """Measure one execution of ``app`` on the virtual cluster."""
        wall_start = time.perf_counter()
        backend = self.build_backend()
        provider = GroundTruthProvider(
            self.cluster, self.bias, run_kernels=self.run_kernels
        )
        runtime = Runtime(
            app.build_graph(),
            app.build_deployment(),
            backend,
            provider,
            trace_level=self.trace_level,
            migration_planner=app.migration_planner(),
        )
        app.bootstrap(runtime)
        run_result = runtime.run()
        return Measurement(
            measured_time=run_result.makespan,
            run=run_result,
            wall_time=time.perf_counter() - wall_start,
            runtime=runtime,
        )
