"""Systematic and stochastic deviations of the "real" machine.

A real kernel never runs at exactly the speed a benchmark-fitted profile
predicts: compilers, cache alignment and instruction mix give each kernel
its own systematic bias, and each invocation sees small random variation.
:class:`KernelBias` captures both.  The simulator's cost models are fitted
against *benchmarks of this ground truth* (see
:func:`repro.apps.lu.costs.benchmark_rate_factors`), so small systematic
residues survive into the prediction — the honest source of the few-percent
errors in the paper's Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


from repro.util.rng import SeedSequenceFactory


@dataclass(frozen=True)
class KernelBias:
    """Per-kernel speed deviation of the real machine vs its profile.

    ``factors[name]`` multiplies the profile-predicted duration of kernel
    ``name`` (>1: the real kernel is slower than modelled);
    ``sigma`` is the per-invocation lognormal noise applied on top.
    """

    factors: Mapping[str, float] = field(default_factory=dict)
    default_factor: float = 1.0
    sigma: float = 0.01

    def factor(self, kernel: str) -> float:
        """Systematic duration multiplier for ``kernel``."""
        return self.factors.get(kernel, self.default_factor)


#: Representative biases for the LU kernels: the panel factorization has
#: irregular access (slower than the dense-kernel plateau), triangular
#: solves stream well (slightly faster), row swaps are pure memory moves.
DEFAULT_KERNEL_BIAS = KernelBias(
    factors={
        "panel_lu": 1.06,
        "trsm": 0.97,
        "gemm": 1.00,
        "sub": 1.04,
        "rowswap": 1.08,
        "overhead": 1.0,
    },
    default_factor=1.02,
    sigma=0.012,
)


class NoisySampler:
    """Seeded per-invocation noise stream (lognormal around 1)."""

    def __init__(self, seed: int, sigma: float) -> None:
        self._rng = SeedSequenceFactory(seed).rng("kernel-noise")
        self.sigma = float(sigma)

    def sample(self) -> float:
        if self.sigma <= 0.0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=self.sigma))
