"""Execution backends: where atomic steps actually take time.

The runtime produces two kinds of atomic steps — compute steps and data
transfers — and is agnostic about how long they take.  A backend binds them
to a kernel, a CPU model and a network model.  The paper's simulator and
the ground-truth testbed are both backends over the same runtime, which is
the reproduction of "the real and simulated applications may be run
identically" (section 3).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cpumodel.base import CpuModel
from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel
from repro.util.validation import check_non_negative


class ExecutionBackend:
    """Binds runtime atomic steps to concrete CPU and network models.

    Parameters
    ----------
    kernel:
        The discrete-event kernel (owns the clock).
    cpu:
        CPU model executing compute steps.
    network:
        Network model carrying inter-node transfers.
    local_delivery_delay:
        Fixed cost of delivering a data object between threads of the same
        node (queue management, no serialization), in seconds.
    """

    def __init__(
        self,
        kernel: Kernel,
        cpu: CpuModel,
        network: NetworkModel,
        local_delivery_delay: float = 2e-6,
    ) -> None:
        self.kernel = kernel
        self.cpu = cpu
        self.network = network
        self.local_delivery_delay = check_non_negative(
            "local_delivery_delay", local_delivery_delay
        )
        cpu.attach_network(network)

    # ------------------------------------------------------------------ api
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.kernel.now

    def submit_compute(
        self,
        node: int,
        seconds: float,
        on_complete: Callable[[], None],
        tag: Any = None,
    ) -> None:
        """Run a compute step of uncontended duration ``seconds`` on ``node``."""
        self.cpu.submit(node, seconds, lambda handle: on_complete(), tag=tag)

    def submit_transfer(
        self,
        src: int,
        dst: int,
        size: float,
        on_complete: Callable[[], None],
        tag: Any = None,
    ) -> None:
        """Move ``size`` bytes ``src -> dst``; same-node moves are local."""
        if src == dst:
            self.kernel.schedule(self.local_delivery_delay, on_complete)
        else:
            self.network.submit(src, dst, size, lambda tr: on_complete(), tag=tag)
