"""The DPS runtime: direct execution of flow graphs over a backend.

This module reconstructs the execution machinery of the paper's sections 2
and 3.  The runtime *actually executes* framework and application code —
routing functions, split/merge instance management, flow control, dynamic
allocation — while delegating the passage of time to an
:class:`~repro.dps.backend.ExecutionBackend` (the simulator's models or the
testbed's).  Operation bodies are generators; every yielded item ends an
*atomic step*, mirroring the paper's suspension of DPS execution threads
("an atomic step starts when another atomic step is completed, and ends
when a data object is posted or when an operation is suspended or
terminates").

Concurrency semantics:

* exactly one operation executes per DPS thread at a time,
* distinct DPS threads overlap freely (the CPU model arbitrates nodes),
* a suspended operation (merge waiting for data objects, flow-control
  block) releases its thread; compute steps hold it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.dps.backend import ExecutionBackend
from repro.dps.data_objects import DataObject, Frame
from repro.dps.deployment import Deployment, ThreadId
from repro.dps.flow_control import CreditAccount
from repro.dps.flowgraph import Edge, FlowGraph, Vertex, VertexKind
from repro.dps.malleability import (
    Migration,
    MigrationPlanner,
    round_robin_planner,
)
from repro.dps.operations import (
    Compute,
    OperationContext,
    Post,
    RemoveThreads,
)
from repro.dps.routing import Broadcast
from repro.dps.serializer import CountingSerializer
from repro.dps.threads import DPSThread, ThreadManager
from repro.dps.trace import RuntimeTrace, StepRecord, TraceLevel, TransferRecord
from repro.errors import (
    DeadlockError,
    FlowGraphError,
    MalleabilityError,
    SimulationError,
)

class DurationProvider:
    """Interface: turn a :class:`Compute` item into (seconds, result).

    Concrete providers live in :mod:`repro.sim.providers` (direct
    execution, partial direct execution) and
    :mod:`repro.testbed.executor` (ground truth).
    """

    def evaluate(self, compute: Compute, ctx: OperationContext) -> tuple[float, Any]:
        raise NotImplementedError


# --------------------------------------------------------------------------
# internal execution bookkeeping
# --------------------------------------------------------------------------


class _Emitter:
    """Frame-emission state of a split or paired-stream instance."""

    __slots__ = ("sid", "posted", "done", "account")

    _sids = itertools.count(1)

    def __init__(self, account: Optional[CreditAccount]) -> None:
        self.sid = next(_Emitter._sids)
        self.posted = 0
        self.done = False
        self.account = account


class _MergeInstance:
    """One split-merge (or stream) instance: accumulator plus progress."""

    __slots__ = (
        "vertex",
        "key",
        "thread",
        "op",
        "ctx",
        "state",
        "received",
        "expected",
        "parent_frames",
        "emitter",
        "finish_requested",
        "finalizing",
        "finished",
    )

    def __init__(
        self,
        vertex: Vertex,
        key: Any,
        thread: DPSThread,
        op: Any,
        ctx: "_RtContext",
        parent_frames: tuple[Frame, ...],
        emitter: Optional[_Emitter],
    ) -> None:
        self.vertex = vertex
        self.key = key
        self.thread = thread
        self.op = op
        self.ctx = ctx
        self.state = op.initial_state(ctx)
        self.received = 0
        self.expected: Optional[int] = None
        self.parent_frames = parent_frames
        self.emitter = emitter
        self.finish_requested = False
        self.finalizing = False
        self.finished = False


class _Execution:
    """A running generator: one operation body being driven."""

    __slots__ = (
        "gen",
        "ctx",
        "vertex",
        "thread",
        "frames_in",
        "emitter",
        "instance",
        "trigger_obj",
        "role",
        "pending_post",
    )

    def __init__(
        self,
        gen: Any,
        ctx: "_RtContext",
        vertex: Vertex,
        thread: DPSThread,
        frames_in: tuple[Frame, ...],
        role: str,
        emitter: Optional[_Emitter] = None,
        instance: Optional[_MergeInstance] = None,
        trigger_obj: Optional[DataObject] = None,
    ) -> None:
        self.gen = gen
        self.ctx = ctx
        self.vertex = vertex
        self.thread = thread
        self.frames_in = frames_in
        self.emitter = emitter
        self.instance = instance
        self.trigger_obj = trigger_obj
        self.role = role  # "run" | "combine" | "finalize"
        self.pending_post: Optional[Post] = None


class _RtContext(OperationContext):
    """Concrete operation context bound to the runtime."""

    def __init__(self, runtime: "Runtime", thread: DPSThread, vertex: Vertex) -> None:
        self._runtime = runtime
        self._thread = thread
        self._vertex = vertex
        self._instance: Optional[_MergeInstance] = None
        self.thread_group = thread.tid.group
        self.thread_index = thread.tid.index
        self.node = thread.node

    def group_size(self, group: str) -> int:
        return len(self._runtime.live_threads(group))

    def live_indices(self, group: str) -> tuple[int, ...]:
        return tuple(t.tid.index for t in self._runtime.live_threads(group))

    @property
    def thread_state(self) -> dict:
        return self._thread.state

    def mark_phase(self, label: str) -> None:
        self._runtime.mark_phase(label)

    def finish_instance(self) -> None:
        if self._instance is None:
            raise FlowGraphError(
                "finish_instance() called outside a keyed stream instance"
            )
        self._instance.finish_requested = True

    @property
    def now(self) -> float:
        return self._runtime.backend.now


@dataclass
class RunResult:
    """Outcome of one runtime execution."""

    makespan: float
    trace: RuntimeTrace
    phases: list[tuple[float, str]]
    allocation_timeline: list[tuple[float, frozenset[int]]]
    events_executed: int

    # ------------------------------------------------------------- queries
    def phase_intervals(self) -> list[tuple[str, float, float]]:
        """(label, start, end) for each marked phase, in order."""
        intervals = []
        for i, (start, label) in enumerate(self.phases):
            end = self.phases[i + 1][0] if i + 1 < len(self.phases) else self.makespan
            intervals.append((label, start, end))
        return intervals

    def phase_duration(self, label: str) -> float:
        """Wall duration of the phase named ``label``."""
        for name, start, end in self.phase_intervals():
            if name == label:
                return end - start
        raise KeyError(f"no phase {label!r} in run result")

    def active_nodes_at(self, time: float) -> frozenset[int]:
        """The node allocation in force at simulation time ``time``."""
        current = self.allocation_timeline[0][1]
        for t, nodes in self.allocation_timeline:
            if t <= time:
                current = nodes
            else:
                break
        return current

    @property
    def total_work(self) -> float:
        """Total uncontended compute work executed, in seconds."""
        return self.trace.total_work()


class Runtime:
    """Executes a flow graph over a backend (the DPS runtime + simulator glue).

    Parameters
    ----------
    graph:
        The validated application flow graph.
    deployment:
        Thread-group to node mapping.
    backend:
        Binds compute steps and transfers to CPU/network models.
    provider:
        Duration provider implementing (partial) direct execution.
    serializer:
        Data-object sizing (defaults to the counting serializer).
    trace_level:
        How much execution detail to retain.
    migration_planner:
        Application hook mapping removed-thread state to survivors.
    """

    def __init__(
        self,
        graph: FlowGraph,
        deployment: Deployment,
        backend: ExecutionBackend,
        provider: DurationProvider,
        serializer: Optional[CountingSerializer] = None,
        trace_level: TraceLevel = TraceLevel.SUMMARY,
        migration_planner: Optional[MigrationPlanner] = None,
    ) -> None:
        graph.validate()
        deployment.validate_against(graph.groups())
        self.graph = graph
        self.deployment = deployment
        self.backend = backend
        self.provider = provider
        self.serializer = serializer or CountingSerializer()
        self.trace = RuntimeTrace(level=trace_level)
        self.migration_planner = migration_planner or round_robin_planner()

        # Thread managers per used node ("same deployment scheme as the
        # real execution" — one application instance per node).
        self.managers: dict[int, ThreadManager] = {}
        self._threads: dict[ThreadId, DPSThread] = {}
        self._live: dict[str, list[DPSThread]] = {}
        for tid in deployment.threads():
            node = deployment.node_of(tid)
            manager = self.managers.setdefault(node, ThreadManager(node))
            thread = manager.create(tid)
            self._threads[tid] = thread
            self._live.setdefault(tid.group, []).append(thread)
        for threads in self._live.values():
            threads.sort(key=lambda t: t.tid.index)

        # Split pairing: split/stream name -> closing vertex name.
        self._closer_of: dict[str, str] = {}
        for vertex in graph.vertices.values():
            if vertex.closes is not None:
                self._closer_of[vertex.closes] = vertex.name

        # Merge instances: (vertex name, key) -> instance.
        self._instances: dict[tuple[str, Any], _MergeInstance] = {}
        # Expected counts announced before the instance exists.
        self._pending_expected: dict[tuple[str, Any], int] = {}
        # Keys of instances that already completed (late-arrival detection).
        self._completed_instances: set[tuple[str, Any]] = set()
        # Every credit account ever created (deadlock diagnostics).
        self._accounts: list[CreditAccount] = []

        # Phases and allocation history.
        self.phases: list[tuple[float, str]] = []
        self._current_phase: Optional[str] = None
        initial_nodes = frozenset(deployment.used_nodes())
        self.allocation_timeline: list[tuple[float, frozenset[int]]] = [
            (0.0, initial_nodes)
        ]
        self._started = False
        self._finished = False

    # ------------------------------------------------------------- queries
    def live_threads(self, group: str) -> list[DPSThread]:
        """Live threads of ``group``, ordered by thread index."""
        try:
            return self._live[group]
        except KeyError:
            raise FlowGraphError(f"unknown thread group {group!r}") from None

    def thread(self, tid: ThreadId) -> DPSThread:
        """Look up a deployed thread."""
        return self._threads[tid]

    def mark_phase(self, label: str) -> None:
        """Record a phase boundary at the current simulation time."""
        self.phases.append((self.backend.now, label))
        self._current_phase = label

    # ----------------------------------------------------------- bootstrap
    def inject(
        self, vertex_name: str, obj: DataObject, thread_index: int = 0
    ) -> None:
        """Deliver a root data object to ``vertex_name`` at time zero."""
        if self._started:
            raise SimulationError("inject() must be called before run()")
        vertex = self._vertex(vertex_name)
        live = self.live_threads(vertex.group)
        thread = live[thread_index % len(live)]
        self.backend.kernel.schedule(0.0, self._deliver, vertex_name, obj, thread)

    def run(self, until: Optional[float] = None) -> RunResult:
        """Execute to completion and return the result.

        Raises :class:`DeadlockError` when the event queue drains while
        merge instances are still waiting for data objects.
        """
        if self._started:
            raise SimulationError("runtime already ran")
        self._started = True
        self.backend.kernel.run(until=until)
        self._finished = True
        if until is None:
            self._check_deadlock()
        return RunResult(
            makespan=self.backend.now,
            trace=self.trace,
            phases=list(self.phases),
            allocation_timeline=list(self.allocation_timeline),
            events_executed=self.backend.kernel.events_executed,
        )

    # ------------------------------------------------------------ delivery
    def _vertex(self, name: str) -> Vertex:
        try:
            return self.graph.vertices[name]
        except KeyError:
            raise FlowGraphError(f"unknown vertex {name!r}") from None

    def _deliver(self, vertex_name: str, obj: DataObject, thread: DPSThread) -> None:
        thread.ensure_alive()
        thread.queue.append((vertex_name, obj))
        self._kick(thread)

    def _kick(self, thread: DPSThread) -> None:
        """Let an idle thread consume its ready list, then its queue."""
        while thread.current is None and (thread.ready or thread.queue):
            if thread.ready:
                execution, value = thread.ready.popleft()
                thread.current = execution
                self._drive(execution, value)
            else:
                vertex_name, obj = thread.queue.popleft()
                thread.processed_objects += 1
                self._dispatch(thread, vertex_name, obj)

    def _dispatch(self, thread: DPSThread, vertex_name: str, obj: DataObject) -> None:
        vertex = self._vertex(vertex_name)
        kind = vertex.kind
        if kind in (VertexKind.LEAF, VertexKind.SPLIT):
            ctx = _RtContext(self, thread, vertex)
            op = vertex.factory()
            emitter = None
            if kind is VertexKind.SPLIT:
                emitter = _Emitter(self._new_account(vertex))
            execution = _Execution(
                gen=op.run(ctx, obj),
                ctx=ctx,
                vertex=vertex,
                thread=thread,
                frames_in=obj.frames,
                role="run",
                emitter=emitter,
                trigger_obj=obj,
            )
            thread.current = execution
            self._drive(execution, None)
            return
        # Merge-like vertices: find or create the instance, run combine.
        instance = self._instance_for(vertex, obj, thread)
        if instance.finished:
            raise FlowGraphError(
                f"vertex {vertex.name!r}: data object {obj.kind!r} arrived "
                "after the instance completed"
            )
        if (
            instance.expected is not None
            and instance.received >= instance.expected
            and vertex.kind is not VertexKind.KEYED_STREAM
        ):
            raise FlowGraphError(
                f"merge {vertex.name!r} received more data objects than its "
                f"split posted (expected {instance.expected})"
            )
        gen = instance.op.combine(instance.ctx, instance.state, obj)
        if gen is None:
            self._after_combine(instance, obj)
            return
        execution = _Execution(
            gen=gen,
            ctx=instance.ctx,
            vertex=vertex,
            thread=thread,
            frames_in=obj.frames,
            role="combine",
            emitter=instance.emitter,
            instance=instance,
            trigger_obj=obj,
        )
        thread.current = execution
        self._drive(execution, None)

    def _instance_for(
        self, vertex: Vertex, obj: DataObject, thread: DPSThread
    ) -> _MergeInstance:
        if vertex.kind is VertexKind.KEYED_STREAM:
            probe_op = vertex.factory()
            key = ("keyed", probe_op.instance_key(obj))
            parent_frames: tuple[Frame, ...] = ()
        else:
            frame = obj.top_frame
            if frame is None:
                raise FlowGraphError(
                    f"merge {vertex.name!r} received root object {obj.kind!r} "
                    "that never went through the paired split"
                )
            key = ("frame", frame.sid)
            parent_frames = obj.frames[:-1]
        full_key = (vertex.name, key)
        # Frame-paired instances are strict: the split announced exactly how
        # many objects exist, so a late arrival is an application bug.
        # Keyed streams manage their own lifecycle; a new object for a
        # completed key legitimately starts a fresh instance.
        if key[0] == "frame" and full_key in self._completed_instances:
            raise FlowGraphError(
                f"vertex {vertex.name!r}: data object {obj.kind!r} arrived "
                "after its instance completed (an upstream operation posted "
                "more objects than the split announced)"
            )
        instance = self._instances.get(full_key)
        if instance is None:
            ctx = _RtContext(self, thread, vertex)
            op = vertex.factory()
            emitter = None
            if vertex.kind in (VertexKind.STREAM, VertexKind.KEYED_STREAM):
                emitter = _Emitter(self._new_account(vertex))
            instance = _MergeInstance(
                vertex, key, thread, op, ctx, parent_frames, emitter
            )
            ctx._instance = instance
            pending = self._pending_expected.pop(full_key, None)
            if pending is not None:
                instance.expected = pending
            self._instances[full_key] = instance
        elif instance.thread is not thread:
            raise FlowGraphError(
                f"merge {vertex.name!r} instance received objects on two "
                f"different threads ({instance.thread.tid} and {thread.tid}); "
                "the routing function must be instance-consistent"
            )
        return instance

    # --------------------------------------------------------------- drive
    def _drive(self, execution: _Execution, send_value: Any) -> None:
        """Advance a generator until it suspends or completes."""
        thread = execution.thread
        while True:
            try:
                item = execution.gen.send(send_value)
            except StopIteration:
                thread.current = None
                self._on_execution_done(execution)
                self._kick(thread)
                return
            if isinstance(item, Compute):
                seconds, result = self.provider.evaluate(item, execution.ctx)
                self._submit_compute(execution, item, seconds, result)
                return  # compute holds the thread; resumes in _compute_done
            if isinstance(item, Post):
                if self._post(execution, item):
                    return  # flow-control block released the thread
                send_value = None
                continue
            if isinstance(item, RemoveThreads):
                self._start_removal(execution, item)
                return  # resumes when migration completes
            raise SimulationError(
                f"operation at vertex {execution.vertex.name!r} yielded an "
                f"unsupported item: {item!r}"
            )

    def _submit_compute(
        self, execution: _Execution, item: Compute, seconds: float, result: Any
    ) -> None:
        start = self.backend.now
        phase = self._current_phase
        node = execution.thread.node

        def done() -> None:
            self.trace.record_step(
                StepRecord(
                    vertex=execution.vertex.name,
                    thread=execution.thread.tid,
                    node=node,
                    kernel=item.spec.name,
                    start=start,
                    end=self.backend.now,
                    work=seconds,
                    phase=phase,
                )
            )
            self._drive(execution, result)

        self.backend.submit_compute(node, seconds, done, tag=execution.vertex.name)

    def _on_execution_done(self, execution: _Execution) -> None:
        if execution.role == "run":
            if execution.emitter is not None:  # split completed
                emitter = execution.emitter
                emitter.done = True
                self._announce_expected(
                    execution.vertex.name, emitter.sid, emitter.posted
                )
            self._release_credit(execution.trigger_obj)
        elif execution.role == "combine":
            self._after_combine(execution.instance, execution.trigger_obj)
        elif execution.role == "finalize":
            self._instance_completed(execution.instance)

    def _after_combine(self, instance: _MergeInstance, obj: DataObject) -> None:
        instance.received += 1
        self._release_credit(obj)
        self._maybe_finalize(instance)

    def _maybe_finalize(self, instance: _MergeInstance) -> None:
        if instance.finalizing or instance.finished:
            return
        vertex = instance.vertex
        if vertex.kind is VertexKind.KEYED_STREAM:
            ready = instance.finish_requested
        else:
            ready = (
                instance.expected is not None
                and instance.received == instance.expected
            )
        if not ready:
            return
        instance.finalizing = True
        gen = instance.op.finalize(instance.ctx, instance.state)
        if gen is None:
            self._instance_completed(instance)
            return
        execution = _Execution(
            gen=gen,
            ctx=instance.ctx,
            vertex=vertex,
            thread=instance.thread,
            frames_in=instance.parent_frames,
            role="finalize",
            emitter=instance.emitter,
            instance=instance,
        )
        thread = instance.thread
        if thread.current is None:
            thread.current = execution
            self._drive(execution, None)
        else:
            thread.ready.append((execution, None))

    def _instance_completed(self, instance: _MergeInstance) -> None:
        instance.finished = True
        self._completed_instances.add((instance.vertex.name, instance.key))
        if instance.emitter is not None:
            emitter = instance.emitter
            emitter.done = True
            self._announce_expected(
                instance.vertex.name, emitter.sid, emitter.posted
            )
        self._instances.pop((instance.vertex.name, instance.key), None)

    def _announce_expected(self, split_name: str, sid: int, count: int) -> None:
        closer = self._closer_of.get(split_name)
        if closer is None:
            return  # nothing closes this vertex (keyed streams downstream)
        if count == 0:
            raise FlowGraphError(
                f"split/stream {split_name!r} posted zero data objects; its "
                f"paired merge {closer!r} would never complete"
            )
        key = (closer, ("frame", sid))
        instance = self._instances.get(key)
        if instance is None:
            self._pending_expected[key] = count
            return
        instance.expected = count
        self._maybe_finalize(instance)

    # -------------------------------------------------------------- posting
    def _new_account(self, vertex: Vertex) -> Optional[CreditAccount]:
        if vertex.max_in_flight is None:
            return None
        account = CreditAccount(vertex.max_in_flight)
        self._accounts.append(account)
        return account

    def _post(self, execution: _Execution, post: Post) -> bool:
        """Emit a data object.  Returns True when flow-control blocked."""
        account = execution.emitter.account if execution.emitter else None
        if account is not None and not account.acquire():
            execution.pending_post = post
            thread = execution.thread

            def resume() -> None:
                pending = execution.pending_post
                execution.pending_post = None
                self._emit(execution, pending, account)
                thread.ready.append((execution, None))
                self._kick(thread)

            account.wait(resume)
            thread.current = None
            self._kick(thread)
            return True
        self._emit(execution, post, account)
        return False

    def _emit(
        self, execution: _Execution, post: Post, account: Optional[CreditAccount]
    ) -> None:
        obj = post.obj
        obj.frames = self._frames_for_post(execution)
        obj.fc_source = account
        obj.created_at = self.backend.now
        if execution.emitter is not None:
            execution.emitter.posted += 1
        edge = self.graph.edge_to(execution.vertex.name, post.to)
        dst_vertex = self._vertex(edge.dst)
        live = self.live_threads(dst_vertex.group)
        if isinstance(edge.routing, Broadcast):
            if account is not None:
                raise FlowGraphError(
                    "flow control cannot be combined with broadcast routing"
                )
            # The broadcast itself counted as one emission; the extra copies
            # count too so paired merges see group_size objects.
            if execution.emitter is not None:
                execution.emitter.posted += len(live) - 1
            for target in live:
                copy = DataObject(
                    obj.kind, obj.payload, dict(obj.meta), obj.declared_size
                )
                copy.frames = obj.frames
                copy.created_at = obj.created_at
                self._send(execution, edge, copy, target)
            return
        if post.route is not None:
            index = int(post.route) % len(live)
        else:
            index = edge.routing(obj, len(live))
        self._send(execution, edge, obj, live[index])

    def _frames_for_post(self, execution: _Execution) -> tuple[Frame, ...]:
        kind = execution.vertex.kind
        if kind is VertexKind.SPLIT:
            emitter = execution.emitter
            return execution.frames_in + (Frame(emitter.sid, emitter.posted),)
        if kind is VertexKind.STREAM:
            emitter = execution.emitter
            parent = execution.instance.parent_frames
            return parent + (Frame(emitter.sid, emitter.posted),)
        if kind is VertexKind.MERGE:
            return execution.instance.parent_frames
        if kind is VertexKind.KEYED_STREAM:
            return ()
        return execution.frames_in  # leaf: pass-through

    def _send(
        self,
        execution: _Execution,
        edge: Edge,
        obj: DataObject,
        target: DPSThread,
    ) -> None:
        src_node = execution.thread.node
        dst_node = target.node
        size = self.serializer.size(obj)
        start = self.backend.now
        phase = self._current_phase

        def delivered() -> None:
            if src_node != dst_node:
                self.trace.record_transfer(
                    TransferRecord(
                        kind=obj.kind,
                        src_node=src_node,
                        dst_node=dst_node,
                        size=size,
                        start=start,
                        end=self.backend.now,
                        phase=phase,
                    )
                )
            else:
                self.trace.record_local_delivery()
            self._deliver(edge.dst, obj, target)

        self.backend.submit_transfer(src_node, dst_node, size, delivered, tag=obj.kind)

    def _release_credit(self, obj: Optional[DataObject]) -> None:
        if obj is None or obj.fc_source is None:
            return
        account: CreditAccount = obj.fc_source
        obj.fc_source = None
        resume = account.release()
        if resume is not None:
            # Resume on a fresh kernel event to keep the call stack shallow.
            self.backend.kernel.schedule(0.0, resume)

    # --------------------------------------------------------- malleability
    def _start_removal(self, execution: _Execution, item: RemoveThreads) -> None:
        group = item.group
        live = self.live_threads(group)
        by_index = {t.tid.index: t for t in live}
        targets: list[DPSThread] = []
        for index in item.thread_indices:
            thread = by_index.get(index)
            if thread is None:
                raise MalleabilityError(
                    f"cannot remove thread {group}[{index}]: not a live thread"
                )
            if thread is execution.thread:
                raise MalleabilityError(
                    "an operation cannot remove its own thread"
                )
            if not thread.drained:
                raise MalleabilityError(
                    f"cannot remove thread {thread.tid}: it still has queued "
                    "or running operations (removal must happen at a "
                    "quiescent point, e.g. an iteration boundary)"
                )
            targets.append(thread)
        for thread in targets:
            thread.alive = False
            live.remove(thread)
        survivors = [t.tid for t in live]
        all_states = {
            t.tid: dict(t.state) for t in itertools.chain(live, targets)
        }
        migrations = list(self.migration_planner(group, all_states, survivors))
        # Detach migrating entries immediately: the data is in flight.
        for migration in migrations:
            self._threads[migration.src].state.pop(migration.key, None)
        for thread in targets:
            if thread.state:
                leftover = sorted(map(repr, thread.state))
                raise MalleabilityError(
                    f"migration plan leaves state on removed thread "
                    f"{thread.tid}: {leftover}"
                )
        pending = len(migrations)
        if pending == 0:
            self._removal_complete(execution)
            return
        counter = {"left": pending}

        def one_done(migration: Migration) -> None:
            dst_thread = self._threads[migration.dst]
            dst_thread.state[migration.key] = migration.payload
            counter["left"] -= 1
            if counter["left"] == 0:
                self._removal_complete(execution)

        for migration in migrations:
            src_node = self.deployment.node_of(migration.src)
            dst_node = self.deployment.node_of(migration.dst)
            self.backend.submit_transfer(
                src_node,
                dst_node,
                migration.size,
                lambda m=migration: one_done(m),
                tag=("migration", migration.key),
            )

    def _removal_complete(self, execution: _Execution) -> None:
        active = {
            node
            for node, manager in self.managers.items()
            if manager.live_count > 0
        }
        current = self.allocation_timeline[-1][1]
        if frozenset(active) != current:
            self.allocation_timeline.append((self.backend.now, frozenset(active)))
        self._drive(execution, None)

    # ------------------------------------------------------------ deadlock
    def _check_deadlock(self) -> None:
        problems: list[str] = []
        for (vertex_name, key), instance in self._instances.items():
            if not instance.finished:
                problems.append(
                    f"instance {vertex_name}[{key}] received "
                    f"{instance.received} objects (expected "
                    f"{instance.expected if instance.expected is not None else 'unknown'})"
                )
        for (vertex_name, key), expected in self._pending_expected.items():
            problems.append(
                f"merge {vertex_name}[{key}] expected {expected} objects "
                "but never received any"
            )
        for account in self._accounts:
            if account.blocked_count:
                problems.append(
                    f"{account.blocked_count} emitter(s) blocked on flow "
                    "control credits that never returned"
                )
        for thread in self._threads.values():
            if thread.alive and not thread.drained:
                problems.append(
                    f"thread {thread.tid} still has "
                    f"{len(thread.queue)} queued / {len(thread.ready)} ready items"
                )
        if problems:
            raise DeadlockError(
                "simulation drained with unfinished work:\n  "
                + "\n  ".join(problems)
            )
