"""Data objects: the typed messages circulating in a DPS flow graph.

"The inputs and outputs of the operations are strongly typed data objects
[which] may contain any combination of simple types or complex types such
as arrays or lists." — paper, section 2.

A :class:`DataObject` couples

* a ``kind`` (the type tag used for dispatch and tracing),
* a ``payload`` — arbitrary Python data (numpy arrays in the LU app), which
  may be ``None`` under partial direct execution with allocation elision,
* ``meta`` — small always-present metadata (block indices, iteration
  numbers) that routing functions and merge keys read, and
* ``declared_size`` — the byte size to charge the network when the payload
  is elided (NOALLOC mode), produced by the size-counting serializer
  workflow described in section 4 of the paper.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping, NamedTuple, Optional

from repro.errors import SerializationError


class Frame(NamedTuple):
    """One level of split-instance context attached to a data object.

    ``sid`` identifies the split/stream instance that created the object;
    ``index`` is the object's sequence number within that instance.  The
    merge operation paired with the split groups arriving objects by ``sid``
    and completes when it has seen as many objects as the split posted.
    """

    sid: int
    index: int


class DataObject:
    """A typed message travelling along flow-graph edges."""

    __slots__ = (
        "kind",
        "payload",
        "meta",
        "declared_size",
        "frames",
        "fc_source",
        "object_id",
        "created_at",
    )

    _ids = itertools.count()

    def __init__(
        self,
        kind: str,
        payload: Any = None,
        meta: Optional[Mapping[str, Any]] = None,
        declared_size: Optional[float] = None,
    ) -> None:
        if not kind:
            raise SerializationError("data object kind must be a non-empty string")
        if declared_size is not None and declared_size < 0:
            raise SerializationError(
                f"declared_size must be >= 0, got {declared_size!r}"
            )
        self.kind = kind
        self.payload = payload
        self.meta: dict[str, Any] = dict(meta) if meta else {}
        self.declared_size = declared_size
        #: innermost-last stack of split frames; managed by the runtime.
        self.frames: tuple[Frame, ...] = ()
        #: flow-control bookkeeping: the emitting instance owed a credit.
        self.fc_source: Any = None
        self.object_id = next(DataObject._ids)
        self.created_at: float = 0.0

    # ------------------------------------------------------------- helpers
    def with_frames(self, frames: tuple[Frame, ...]) -> "DataObject":
        """Set the frame stack (runtime use); returns self for chaining."""
        self.frames = frames
        return self

    @property
    def top_frame(self) -> Optional[Frame]:
        """Innermost frame, or ``None`` for a root object."""
        return self.frames[-1] if self.frames else None

    def get(self, key: str, default: Any = None) -> Any:
        """Read a metadata field."""
        return self.meta.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        keys = ",".join(f"{k}={v!r}" for k, v in sorted(self.meta.items()))
        return f"DataObject({self.kind}#{self.object_id} {keys})"
