"""Flow-graph construction and validation.

"DPS applications are defined as directed acyclic graphs of operations.
Its fundamental types of operations are the leaf, split, merge and stream
operations." — paper, section 2.

A :class:`FlowGraph` holds vertices (operation factories bound to thread
groups) and directed edges (with routing functions).  Splits are paired
with the merge or stream that *closes* them; keyed streams need no pairing.
Graphs are validated for acyclicity and well-formed pairing, and support
**composition**: replacing a leaf vertex by a whole subgraph, which is how
the parallel sub-block multiplication variant (paper Fig. 7) plugs into the
LU graph ("The compositional nature of DPS allows us to replace operation
(e) in Figure 5 by the flow graph shown in Figure 7").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

import networkx as nx

from repro.dps.operations import (
    LeafOperation,
    MergeOperation,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import RoutingFunction
from repro.errors import FlowGraphError

OperationFactory = Callable[[], Any]


class VertexKind(enum.Enum):
    """The four fundamental DPS operation types (streams in two flavours)."""

    LEAF = "leaf"
    SPLIT = "split"
    MERGE = "merge"
    STREAM = "stream"  # paired with a split (merge+split combination)
    KEYED_STREAM = "keyed_stream"  # app-managed grouping and completion


@dataclass
class Vertex:
    """One operation vertex of the flow graph."""

    name: str
    kind: VertexKind
    factory: OperationFactory
    group: str
    closes: Optional[str] = None  # split this merge/stream is paired with
    max_in_flight: Optional[int] = None  # flow-control credit limit


@dataclass
class Edge:
    """A directed edge carrying data objects from ``src`` to ``dst``."""

    src: str
    dst: str
    routing: RoutingFunction


_EXPECTED_BASE = {
    VertexKind.LEAF: LeafOperation,
    VertexKind.SPLIT: SplitOperation,
    VertexKind.MERGE: MergeOperation,
    VertexKind.STREAM: StreamOperation,
    VertexKind.KEYED_STREAM: StreamOperation,
}


class FlowGraph:
    """A directed acyclic graph of DPS operations.

    Vertices are added with the ``add_*`` methods, edges with
    :meth:`connect`.  Call :meth:`validate` (done automatically by the
    runtime) after construction.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.vertices: dict[str, Vertex] = {}
        self.edges: list[Edge] = []
        self._out_edges: dict[str, list[Edge]] = {}

    # ------------------------------------------------------------ building
    def _add(self, vertex: Vertex) -> Vertex:
        if vertex.name in self.vertices:
            raise FlowGraphError(f"duplicate vertex name {vertex.name!r}")
        self.vertices[vertex.name] = vertex
        self._out_edges.setdefault(vertex.name, [])
        return vertex

    def add_leaf(
        self, name: str, factory: OperationFactory, group: str
    ) -> Vertex:
        """Add a leaf operation executing on thread group ``group``."""
        return self._add(Vertex(name, VertexKind.LEAF, factory, group))

    def add_split(
        self,
        name: str,
        factory: OperationFactory,
        group: str,
        max_in_flight: Optional[int] = None,
    ) -> Vertex:
        """Add a split operation; ``max_in_flight`` enables flow control."""
        return self._add(
            Vertex(name, VertexKind.SPLIT, factory, group, max_in_flight=max_in_flight)
        )

    def add_merge(
        self, name: str, factory: OperationFactory, group: str, closes: str
    ) -> Vertex:
        """Add the merge paired with split ``closes``."""
        return self._add(Vertex(name, VertexKind.MERGE, factory, group, closes=closes))

    def add_stream(
        self,
        name: str,
        factory: OperationFactory,
        group: str,
        closes: str,
        max_in_flight: Optional[int] = None,
    ) -> Vertex:
        """Add a paired stream (merge+split) closing split ``closes``."""
        return self._add(
            Vertex(
                name,
                VertexKind.STREAM,
                factory,
                group,
                closes=closes,
                max_in_flight=max_in_flight,
            )
        )

    def add_keyed_stream(
        self,
        name: str,
        factory: OperationFactory,
        group: str,
        max_in_flight: Optional[int] = None,
    ) -> Vertex:
        """Add a keyed stream: app-defined grouping and completion."""
        return self._add(
            Vertex(
                name,
                VertexKind.KEYED_STREAM,
                factory,
                group,
                max_in_flight=max_in_flight,
            )
        )

    def connect(self, src: str, dst: str, routing: RoutingFunction) -> Edge:
        """Add a directed edge ``src -> dst`` with the given routing function."""
        for endpoint in (src, dst):
            if endpoint not in self.vertices:
                raise FlowGraphError(f"unknown vertex {endpoint!r} in edge")
        edge = Edge(src, dst, routing)
        self.edges.append(edge)
        self._out_edges[src].append(edge)
        return edge

    # ------------------------------------------------------------- queries
    def out_edges(self, name: str) -> list[Edge]:
        """Outgoing edges of vertex ``name``."""
        return self._out_edges[name]

    def edge_to(self, src: str, dst: Optional[str]) -> Edge:
        """Resolve the edge used by ``Post(obj, to=dst)`` from ``src``.

        With ``dst=None`` the vertex must have exactly one outgoing edge.
        """
        outs = self._out_edges.get(src, [])
        if dst is None:
            if len(outs) != 1:
                raise FlowGraphError(
                    f"vertex {src!r} has {len(outs)} outgoing edges; "
                    "Post must name its destination"
                )
            return outs[0]
        for edge in outs:
            if edge.dst == dst:
                return edge
        raise FlowGraphError(f"no edge {src!r} -> {dst!r} in flow graph")

    def groups(self) -> set[str]:
        """Thread-group names referenced by the graph."""
        return {v.group for v in self.vertices.values()}

    def as_networkx(self) -> "nx.DiGraph":
        """Export the graph structure for analysis and visualization."""
        g = nx.DiGraph(name=self.name)
        for v in self.vertices.values():
            g.add_node(v.name, kind=v.kind.value, group=v.group)
        for e in self.edges:
            g.add_edge(e.src, e.dst)
        return g

    # ---------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural invariants; raise :class:`FlowGraphError` if violated."""
        g = self.as_networkx()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise FlowGraphError(f"flow graph has a cycle: {cycle}")
        splits = {
            n for n, v in self.vertices.items() if v.kind is VertexKind.SPLIT
        }
        closers: dict[str, str] = {}
        for v in self.vertices.values():
            base = _EXPECTED_BASE[v.kind]
            try:
                instance = v.factory()
            except Exception as exc:  # pragma: no cover - factory bug
                raise FlowGraphError(
                    f"factory of vertex {v.name!r} failed: {exc}"
                ) from exc
            if not isinstance(instance, base):
                raise FlowGraphError(
                    f"vertex {v.name!r} is declared {v.kind.value} but its "
                    f"factory built a {type(instance).__name__}"
                )
            if v.kind in (VertexKind.MERGE, VertexKind.STREAM):
                if v.closes not in splits and not (
                    v.closes in self.vertices
                    and self.vertices[v.closes].kind is VertexKind.STREAM
                ):
                    raise FlowGraphError(
                        f"vertex {v.name!r} closes unknown split {v.closes!r}"
                    )
                if v.closes in closers:
                    raise FlowGraphError(
                        f"split {v.closes!r} is closed by both "
                        f"{closers[v.closes]!r} and {v.name!r}"
                    )
                closers[v.closes] = v.name
            if v.max_in_flight is not None and v.max_in_flight < 1:
                raise FlowGraphError(
                    f"vertex {v.name!r}: max_in_flight must be >= 1"
                )
        for name in self.vertices:
            if name not in self._out_edges:
                self._out_edges[name] = []

    # --------------------------------------------------------- composition
    def replace_leaf(
        self,
        name: str,
        subgraph: "FlowGraph",
        entry: str,
        exit_: str,
    ) -> None:
        """Substitute leaf ``name`` by ``subgraph`` (DPS composition).

        Incoming edges of ``name`` are redirected to the subgraph's
        ``entry`` vertex; outgoing edges leave from ``exit_``.  Subgraph
        vertex names are prefixed with ``"<name>."`` to stay unique.
        """
        if name not in self.vertices:
            raise FlowGraphError(f"cannot replace unknown vertex {name!r}")
        if self.vertices[name].kind is not VertexKind.LEAF:
            raise FlowGraphError(
                f"only leaf vertices can be replaced; {name!r} is "
                f"{self.vertices[name].kind.value}"
            )
        prefix = f"{name}."
        rename = {v: prefix + v for v in subgraph.vertices}
        if entry not in subgraph.vertices or exit_ not in subgraph.vertices:
            raise FlowGraphError("subgraph entry/exit vertices not found")
        # Splice in the subgraph's vertices.
        for v in subgraph.vertices.values():
            clone = Vertex(
                rename[v.name],
                v.kind,
                v.factory,
                v.group,
                closes=rename[v.closes] if v.closes else None,
                max_in_flight=v.max_in_flight,
            )
            self._add(clone)
        for e in subgraph.edges:
            self.connect(rename[e.src], rename[e.dst], e.routing)
        # Rewire edges that touched the replaced leaf.
        del self.vertices[name]
        old_out = self._out_edges.pop(name)
        for edge in self.edges:
            if edge.dst == name:
                edge.dst = rename[entry]
        for edge in old_out:
            edge.src = rename[exit_]
            self._out_edges[rename[exit_]].append(edge)
        self.edges = [e for e in self.edges if e.src != name or e in old_out]
