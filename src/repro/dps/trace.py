"""Execution traces: atomic-step records and summary accounting.

"Each atomic step is recorded and stored into the simulator with a
measurement or an estimate of its duration." — paper, section 3.  The trace
is what the timing diagrams (paper Figs. 2 and 4), the utilization metrics
and the dynamic-efficiency computation are derived from.

Full traces of large runs are expensive, so three levels exist:

* ``NONE`` — only the makespan and counters,
* ``SUMMARY`` — per-node and per-phase busy-work accumulators (default),
* ``FULL`` — every atomic step and transfer, for timing diagrams and tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.dps.deployment import ThreadId


class TraceLevel(enum.IntEnum):
    """How much execution detail to retain."""

    NONE = 0
    SUMMARY = 1
    FULL = 2


@dataclass(frozen=True)
class StepRecord:
    """One compute atomic step, as executed."""

    vertex: str
    thread: ThreadId
    node: int
    kernel: str
    start: float
    end: float
    work: float  # uncontended duration; end-start >= work under contention
    phase: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def stretch(self) -> float:
        """Contended duration over uncontended work (>= 1)."""
        return self.duration / self.work if self.work > 0 else 1.0


@dataclass(frozen=True)
class TransferRecord:
    """One data-object transfer, as executed."""

    kind: str
    src_node: int
    dst_node: int
    size: float
    start: float
    end: float
    phase: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RuntimeTrace:
    """Accumulated execution record of one run."""

    level: TraceLevel = TraceLevel.SUMMARY
    steps: list[StepRecord] = field(default_factory=list)
    transfers: list[TransferRecord] = field(default_factory=list)
    node_work: dict[int, float] = field(default_factory=dict)
    phase_work: dict[str, float] = field(default_factory=dict)
    phase_node_work: dict[tuple[str, int], float] = field(default_factory=dict)
    step_count: int = 0
    transfer_count: int = 0
    transfer_bytes: float = 0.0
    local_deliveries: int = 0

    # ------------------------------------------------------------ recording
    def record_step(self, record: StepRecord) -> None:
        """Account one completed compute step."""
        self.step_count += 1
        if self.level >= TraceLevel.SUMMARY:
            self.node_work[record.node] = (
                self.node_work.get(record.node, 0.0) + record.work
            )
            if record.phase is not None:
                self.phase_work[record.phase] = (
                    self.phase_work.get(record.phase, 0.0) + record.work
                )
                key = (record.phase, record.node)
                self.phase_node_work[key] = (
                    self.phase_node_work.get(key, 0.0) + record.work
                )
        if self.level >= TraceLevel.FULL:
            self.steps.append(record)

    def record_transfer(self, record: TransferRecord) -> None:
        """Account one completed inter-node transfer."""
        self.transfer_count += 1
        self.transfer_bytes += record.size
        if self.level >= TraceLevel.FULL:
            self.transfers.append(record)

    def record_local_delivery(self) -> None:
        """Count a same-node data-object delivery (bypasses the network)."""
        self.local_deliveries += 1

    # ------------------------------------------------------------- queries
    def total_work(self) -> float:
        """Total uncontended compute work across all nodes, in seconds."""
        return sum(self.node_work.values())

    def busy_fraction(self, node: int, makespan: float) -> float:
        """Fraction of the run the node spent computing (work basis)."""
        if makespan <= 0.0:
            return 0.0
        return self.node_work.get(node, 0.0) / makespan
