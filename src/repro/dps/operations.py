"""Operation base classes and the atomic-step protocol.

DPS applications provide the bodies of their operations; the framework
controls splitting, routing, merging and execution (paper, section 2: "All
operations are extensible constructs, i.e. the developer provides his own
code...").

Operation bodies are **generators**.  Each yielded item both requests a
framework service and marks an atomic-step boundary — the points where the
paper's simulator suspends the running DPS execution thread:

* ``yield Compute(KernelSpec(...), fn, args)`` — perform computation.  The
  runtime's *duration provider* decides whether ``fn`` actually runs
  (direct execution) or only its modelled duration is charged (partial
  direct execution); the generator resumes with ``fn``'s result (or
  ``None`` under PDEXEC).
* ``yield Post(obj, to=..., route=...)`` — emit a data object along an
  outgoing edge.  Posting ends an atomic step; the transfer proceeds
  concurrently.  If flow control limits are exhausted the generator stays
  suspended until a credit returns.
* ``yield RemoveThreads(...)`` — request a dynamic allocation change; the
  generator resumes once state migration has completed (see
  :mod:`repro.dps.malleability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, Mapping, Optional, Sequence

from repro.dps.data_objects import DataObject
from repro.errors import ConfigurationError

OpGenerator = Generator[Any, Any, Any]


@dataclass(frozen=True)
class KernelSpec:
    """Description of one computational kernel invocation.

    Duration providers use this to model the kernel's cost; it carries the
    information a performance model needs without referencing payloads.

    Parameters
    ----------
    name:
        Kernel identifier (``"gemm"``, ``"trsm"``, ``"panel_lu"``...).
    flops:
        Floating-point operations performed by the invocation.
    working_set:
        Bytes touched by the kernel (drives cache-efficiency modelling).
    params:
        Free-form extra parameters (block sizes etc.) for custom models.
    """

    name: str
    flops: float = 0.0
    working_set: float = 0.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.flops < 0.0:
            raise ConfigurationError(f"flops must be >= 0, got {self.flops!r}")
        if self.working_set < 0.0:
            raise ConfigurationError(
                f"working_set must be >= 0, got {self.working_set!r}"
            )


class Compute:
    """Yield item: run a kernel (for real or as a modelled duration)."""

    __slots__ = ("spec", "fn", "args")

    def __init__(
        self,
        spec: KernelSpec,
        fn: Optional[Callable[..., Any]] = None,
        args: Sequence[Any] = (),
    ) -> None:
        self.spec = spec
        self.fn = fn
        self.args = tuple(args)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Compute({self.spec.name}, flops={self.spec.flops})"


class Post:
    """Yield item: emit ``obj`` along the edge named ``to``.

    ``to`` may be omitted when the vertex has a single outgoing edge.
    ``route`` overrides the edge's routing function with an explicit target
    thread index within the destination group (used when the application
    knows the owner, e.g. the column block's home thread in the LU app).
    """

    __slots__ = ("obj", "to", "route")

    def __init__(
        self,
        obj: DataObject,
        to: Optional[str] = None,
        route: Optional[int] = None,
    ) -> None:
        self.obj = obj
        self.to = to
        self.route = route

    def __repr__(self) -> str:  # pragma: no cover
        return f"Post({self.obj!r} -> {self.to or '<default>'})"


class RemoveThreads:
    """Yield item: dynamically remove threads from a group.

    The runtime migrates the removed threads' state according to the
    application's migration plan (network transfers), deactivates nodes
    that no longer host any thread, and resumes the generator when the
    reallocation is complete.
    """

    __slots__ = ("group", "thread_indices")

    def __init__(self, group: str, thread_indices: Sequence[int]) -> None:
        if not thread_indices:
            raise ConfigurationError("RemoveThreads requires at least one index")
        self.group = group
        self.thread_indices = tuple(int(i) for i in thread_indices)


class OperationContext:
    """Runtime services visible to operation bodies.

    One context exists per operation *instance*; it exposes the hosting
    thread's identity and state, live group sizes (which change under
    dynamic allocation), and phase marking for dynamic-efficiency
    accounting.  The concrete implementation lives in the runtime; this
    class defines the interface operations may rely on.
    """

    # The runtime fills these in.
    thread_group: str = ""
    thread_index: int = 0
    node: int = 0

    def group_size(self, group: str) -> int:  # pragma: no cover - interface
        """Current number of live threads in ``group``."""
        raise NotImplementedError

    def live_indices(self, group: str) -> tuple[int, ...]:  # pragma: no cover
        """Indices of the live threads in ``group``, ascending."""
        raise NotImplementedError

    @property
    def thread_state(self) -> dict:  # pragma: no cover - interface
        """Mutable per-DPS-thread state dictionary."""
        raise NotImplementedError

    def mark_phase(self, label: str) -> None:  # pragma: no cover - interface
        """Record a phase boundary (e.g. LU iteration start) at current time."""
        raise NotImplementedError

    def finish_instance(self) -> None:  # pragma: no cover - interface
        """Declare this (stream) instance complete; see StreamOperation."""
        raise NotImplementedError

    @property
    def now(self) -> float:  # pragma: no cover - interface
        """Current simulation time."""
        raise NotImplementedError


class LeafOperation:
    """A leaf processes one data object and posts results.

    Subclasses implement :meth:`run` as a generator.  A fresh instance
    executes per delivered data object.
    """

    def run(self, ctx: OperationContext, obj: DataObject) -> OpGenerator:
        raise NotImplementedError
        yield  # pragma: no cover


class SplitOperation:
    """A split divides one incoming object into subtask objects.

    Every object it posts opens a new frame; the paired merge completes
    once it has collected as many objects as the split posted.  "Successive
    data objects arriving at the entry of a split operation yield
    successive new instances of the split-merge operation pair."
    """

    def run(self, ctx: OperationContext, obj: DataObject) -> OpGenerator:
        raise NotImplementedError
        yield  # pragma: no cover


class MergeOperation:
    """A merge collects and aggregates the objects of one split instance.

    ``initial_state`` creates the accumulator; ``combine`` folds each
    arriving object (as a generator, so aggregation cost is modelled);
    ``finalize`` runs when all objects have arrived and typically posts the
    aggregated result.
    """

    def initial_state(self, ctx: OperationContext) -> Any:
        """Create the per-instance accumulator (default: ``None``)."""
        return None

    def combine(
        self, ctx: OperationContext, state: Any, obj: DataObject
    ) -> Optional[OpGenerator]:
        """Fold ``obj`` into ``state``; may be a generator or return None."""
        raise NotImplementedError

    def finalize(self, ctx: OperationContext, state: Any) -> Optional[OpGenerator]:
        """Run after the last ``combine``; normally posts the result."""
        raise NotImplementedError


class StreamOperation(MergeOperation):
    """A stream combines a merge with a subsequent split.

    "Instead of waiting for the merge operation to receive all its data
    objects ... the stream operation can stream out new data objects based
    on groups of incoming data objects", maximizing pipelining.

    Two usage modes:

    * **paired** (``closes=`` a split in the flow graph): grouping is by the
      paired split's instances, and completion is automatic, as for a merge.
      Posts from ``combine``/``finalize`` open the stream's own frame.
    * **keyed** (no pairing): the application controls grouping via
      :meth:`instance_key` and declares completion by calling
      ``ctx.finish_instance()`` — this is how DPS developers express custom
      synchronization granularity, e.g. per-column-block readiness in the
      LU flow graph.
    """

    def instance_key(self, obj: DataObject) -> Any:
        """Group key for keyed streams (default: one global instance)."""
        return None

    def finalize(self, ctx: OperationContext, state: Any) -> Optional[OpGenerator]:
        """Keyed streams often do all their work in combine; default no-op."""
        return None
