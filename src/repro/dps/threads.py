"""DPS threads and per-node thread managers.

"A thread in DPS is a logical construct representing an execution
environment for a set of operations. [...] Data object queues are
associated with the thread that contains the operations that will consume
them." — paper, section 2.

At deployment the runtime instantiates one :class:`ThreadManager` per
virtual node, mirroring the simulated remote-launching mechanism of
section 3 ("the simulation of an application uses the same number of DPS
thread managers and the same deployment scheme as the real execution").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.dps.deployment import ThreadId
from repro.errors import MalleabilityError


class DPSThread:
    """One DPS thread: queue, per-thread state, and execution status.

    Exactly one operation executes on a thread at any time; a thread whose
    operation is suspended (merge waiting for objects, flow-control block)
    is free to process other queued deliveries — the mechanism behind the
    overlap of communication handling and computation within a node.
    """

    __slots__ = (
        "tid",
        "node",
        "state",
        "queue",
        "ready",
        "current",
        "alive",
        "processed_objects",
    )

    def __init__(self, tid: ThreadId, node: int) -> None:
        self.tid = tid
        self.node = node
        #: user-visible per-thread state (e.g. stored column blocks)
        self.state: dict[Any, Any] = {}
        #: pending data-object deliveries: (vertex_name, DataObject)
        self.queue: deque = deque()
        #: suspended executions ready to resume: (callable, value)
        self.ready: deque = deque()
        #: the execution currently holding the thread (None when idle)
        self.current: Optional[Any] = None
        self.alive = True
        self.processed_objects = 0

    @property
    def idle(self) -> bool:
        """True when no operation holds the thread."""
        return self.current is None

    @property
    def drained(self) -> bool:
        """True when nothing is queued, ready or running."""
        return self.idle and not self.queue and not self.ready

    def ensure_alive(self) -> None:
        """Raise when work is routed to a removed thread."""
        if not self.alive:
            raise MalleabilityError(
                f"data object routed to removed thread {self.tid}; the "
                "application changed the allocation while objects destined "
                "to the removed threads were still in flight"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        status = "dead" if not self.alive else ("busy" if self.current else "idle")
        return f"DPSThread({self.tid}, node={self.node}, {status}, q={len(self.queue)})"


class ThreadManager:
    """Per-node manager handling thread creation, destruction and lookup."""

    def __init__(self, node: int) -> None:
        self.node = node
        self.threads: dict[ThreadId, DPSThread] = {}

    def create(self, tid: ThreadId) -> DPSThread:
        """Create a DPS thread on this node."""
        if tid in self.threads:
            raise MalleabilityError(f"thread {tid} already exists on node {self.node}")
        thread = DPSThread(tid, self.node)
        self.threads[tid] = thread
        return thread

    def destroy(self, tid: ThreadId) -> DPSThread:
        """Destroy a thread (it must be fully drained)."""
        thread = self.threads.pop(tid, None)
        if thread is None:
            raise MalleabilityError(f"thread {tid} does not exist on node {self.node}")
        if not thread.drained:
            raise MalleabilityError(
                f"cannot destroy thread {tid}: it still has queued or "
                "running operations"
            )
        thread.alive = False
        return thread

    @property
    def live_count(self) -> int:
        """Number of live threads managed on this node."""
        return sum(1 for t in self.threads.values() if t.alive)
