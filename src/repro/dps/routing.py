"""Routing functions: mapping data objects onto DPS threads.

"The selection of the DPS thread on which an operation is to be executed is
accomplished by evaluating at runtime a user defined routing function
attached to the corresponding directed edge of the flow graph." — paper,
section 2.

A routing function receives the data object and the *current* size of the
destination thread group (which shrinks under dynamic allocation) and
returns a thread index in ``[0, group_size)``.  Returning an out-of-range
index raises :class:`~repro.errors.RoutingError` at evaluation time.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.dps.data_objects import DataObject
from repro.errors import RoutingError


class RoutingFunction(ABC):
    """Base class: maps (data object, group size) to a thread index."""

    @abstractmethod
    def route(self, obj: DataObject, group_size: int) -> int:
        """Return the destination thread index in ``[0, group_size)``."""

    def __call__(self, obj: DataObject, group_size: int) -> int:
        if group_size <= 0:
            raise RoutingError("routing into an empty thread group")
        index = int(self.route(obj, group_size))
        if not 0 <= index < group_size:
            raise RoutingError(
                f"{type(self).__name__} produced index {index} outside "
                f"[0, {group_size})"
            )
        return index


class Constant(RoutingFunction):
    """Always route to a fixed index (clamped into the live group)."""

    def __init__(self, index: int = 0) -> None:
        self.index = int(index)

    def route(self, obj: DataObject, group_size: int) -> int:
        return self.index % group_size


class RoundRobin(RoutingFunction):
    """Cycle through the group's threads, one object at a time.

    The cycle counter is per routing-function instance, matching a DPS
    routing function holding its own distribution state.
    """

    def __init__(self) -> None:
        self._counter = itertools.count()

    def route(self, obj: DataObject, group_size: int) -> int:
        return next(self._counter) % group_size


class Modulo(RoutingFunction):
    """Route by ``meta[key] % group_size`` — block-cyclic data ownership.

    This is the LU application's owner function: column block ``j`` lives
    on thread ``j % P``, and keeps living on thread ``j % P'`` after the
    group shrinks to ``P'`` threads (the migration plan moves the blocks).
    """

    def __init__(self, key: str, offset: int = 0) -> None:
        self.key = key
        self.offset = int(offset)

    def route(self, obj: DataObject, group_size: int) -> int:
        value = obj.get(self.key)
        if value is None:
            raise RoutingError(
                f"Modulo routing needs meta[{self.key!r}] on {obj.kind!r}"
            )
        return (int(value) + self.offset) % group_size


class ByMetaKey(RoutingFunction):
    """Route by an arbitrary function of a metadata value."""

    def __init__(self, key: str, fn: Callable[[Any, int], int]) -> None:
        self.key = key
        self.fn = fn

    def route(self, obj: DataObject, group_size: int) -> int:
        value = obj.get(self.key)
        if value is None:
            raise RoutingError(
                f"ByMetaKey routing needs meta[{self.key!r}] on {obj.kind!r}"
            )
        return int(self.fn(value, group_size)) % group_size


class Broadcast(RoutingFunction):
    """Marker routing: deliver a copy to every live thread of the group.

    The runtime recognises this type and fans the post out; ``route`` is
    never consulted for a single index.
    """

    def route(self, obj: DataObject, group_size: int) -> int:  # pragma: no cover
        raise RoutingError("Broadcast routing is expanded by the runtime")
