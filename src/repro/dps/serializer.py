"""Data-object serialization and the size-counting serializer.

Paper, section 4: "The size of the data objects is computed at runtime,
using a modified version of the built-in DPS data object serializer.
Instead of doing the actual serialization, the modified serializer only
counts the number of bytes of the data object using the size description of
the data structures it contains, without performing any memory copies.
Hence, the memory of data structures does not need to be allocated."

:func:`payload_nbytes` walks a payload structure and counts exact wire
bytes without copying anything (numpy arrays contribute ``nbytes``).
:class:`CountingSerializer` adds the per-object wire envelope and honours
``declared_size`` so NOALLOC payload-free objects are charged the size the
real payload would have had.
"""

from __future__ import annotations

from typing import Any

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.dps.data_objects import DataObject
from repro.errors import SerializationError

#: Wire envelope: object header (kind hash, frame stack, routing info).
HEADER_BYTES = 48
#: Per-metadata-entry cost (key hash + tagged value).
META_ENTRY_BYTES = 16
#: Per-container-element tag in the serialized stream.
ELEMENT_TAG_BYTES = 4


class SerializedSizeInfo:
    """Breakdown of a data object's wire size (header/meta/payload)."""

    __slots__ = ("header", "meta", "payload")

    def __init__(self, header: float, meta: float, payload: float) -> None:
        self.header = header
        self.meta = meta
        self.payload = payload

    @property
    def total(self) -> float:
        return self.header + self.meta + self.payload

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SerializedSizeInfo(header={self.header}, meta={self.meta}, "
            f"payload={self.payload})"
        )


def payload_nbytes(value: Any) -> float:
    """Exact serialized byte count of a payload structure, without copying.

    Supported node types mirror DPS data-object capabilities: scalars,
    strings/bytes, numpy arrays, and arbitrarily nested lists/tuples/dicts.
    ``None`` contributes nothing (an elided field).
    """
    if value is None:
        return 0.0
    if np is not None and isinstance(value, (np.ndarray, np.generic)):
        return float(value.nbytes)
    if isinstance(value, bool):
        return 1.0
    if isinstance(value, int):
        return 8.0
    if isinstance(value, float):
        return 8.0
    if isinstance(value, complex):
        return 16.0
    if isinstance(value, bytes):
        return float(len(value))
    if isinstance(value, str):
        return float(len(value.encode("utf-8")))
    if isinstance(value, (list, tuple)):
        return sum(payload_nbytes(v) + ELEMENT_TAG_BYTES for v in value)
    if isinstance(value, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) + ELEMENT_TAG_BYTES
            for k, v in value.items()
        )
    raise SerializationError(
        f"cannot size payload element of type {type(value).__name__}"
    )


class CountingSerializer:
    """Computes data-object wire sizes; never copies or allocates payloads."""

    def size_info(self, obj: DataObject) -> SerializedSizeInfo:
        """Full size breakdown for ``obj``.

        When the object declares a size (NOALLOC mode), the declared value
        is used for the payload; the real payload, if also present, is
        ignored so declared sizes stay authoritative for what-if studies.
        """
        meta_bytes = float(len(obj.meta) * META_ENTRY_BYTES)
        for key in obj.meta:
            meta_bytes += len(key)
        if obj.declared_size is not None:
            payload = float(obj.declared_size)
        else:
            payload = payload_nbytes(obj.payload)
        return SerializedSizeInfo(float(HEADER_BYTES), meta_bytes, payload)

    def size(self, obj: DataObject) -> float:
        """Total wire size in bytes."""
        return self.size_info(obj).total
