"""Deployment: mapping DPS threads onto compute nodes.

"The deployment of a DPS application is done at runtime, and relies on a
remote launching mechanism to create a new application instance on every
node that will host a DPS thread." — paper, section 2.  In the simulator,
"a modified remote launching mechanism instantiates a new DPS thread
manager for each application instance that would have been launched in a
real execution" (section 3); the runtime mirrors this by creating one
:class:`ThreadManager` per virtual node at deployment time.

A deployment names *thread groups* (collections of DPS threads operations
are routed into) and assigns each thread to a node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, NamedTuple, Sequence

from repro.errors import DeploymentError


class ThreadId(NamedTuple):
    """Identity of a DPS thread: its group and index within the group."""

    group: str
    index: int

    def __str__(self) -> str:
        return f"{self.group}[{self.index}]"


@dataclass(frozen=True)
class GroupSpec:
    """One thread group: its size and the node hosting each thread."""

    name: str
    nodes: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.nodes)


class Deployment:
    """Thread-group to node mapping for one application run."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise DeploymentError(f"need at least one node, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.groups: dict[str, GroupSpec] = {}

    # ------------------------------------------------------------ building
    def add_group(self, name: str, nodes: Sequence[int]) -> "Deployment":
        """Create group ``name`` with one thread per entry of ``nodes``."""
        if name in self.groups:
            raise DeploymentError(f"duplicate thread group {name!r}")
        nodes = tuple(int(n) for n in nodes)
        if not nodes:
            raise DeploymentError(f"group {name!r} must have at least one thread")
        for n in nodes:
            if not 0 <= n < self.num_nodes:
                raise DeploymentError(
                    f"group {name!r}: node {n} outside [0, {self.num_nodes})"
                )
        self.groups[name] = GroupSpec(name, nodes)
        return self

    def add_group_block(self, name: str, threads: int, nodes: Sequence[int] | None = None) -> "Deployment":
        """Distribute ``threads`` threads block-cyclically over ``nodes``.

        Thread ``i`` lands on ``nodes[i % len(nodes)]`` — the natural layout
        for the LU column-block distribution (two blocks per node when
        ``threads == 2 * len(nodes)``).
        """
        pool = tuple(nodes) if nodes is not None else tuple(range(self.num_nodes))
        return self.add_group(name, [pool[i % len(pool)] for i in range(threads)])

    def add_singleton(self, name: str, node: int = 0) -> "Deployment":
        """Create a one-thread group (e.g. the main/master thread)."""
        return self.add_group(name, [node])

    def add_per_node(self, name: str, nodes: Sequence[int] | None = None) -> "Deployment":
        """Create a group with exactly one thread on each node."""
        pool = tuple(nodes) if nodes is not None else tuple(range(self.num_nodes))
        return self.add_group(name, pool)

    # ------------------------------------------------------------- queries
    def node_of(self, thread: ThreadId) -> int:
        """The node hosting ``thread``."""
        spec = self.groups.get(thread.group)
        if spec is None:
            raise DeploymentError(f"unknown thread group {thread.group!r}")
        if not 0 <= thread.index < spec.size:
            raise DeploymentError(f"thread index out of range: {thread}")
        return spec.nodes[thread.index]

    def threads(self) -> Iterable[ThreadId]:
        """All deployed threads."""
        for spec in self.groups.values():
            for i in range(spec.size):
                yield ThreadId(spec.name, i)

    def used_nodes(self) -> set[int]:
        """Nodes hosting at least one thread."""
        return {n for spec in self.groups.values() for n in spec.nodes}

    def validate_against(self, group_names: set[str]) -> None:
        """Check the deployment provides every group a flow graph needs."""
        missing = group_names - set(self.groups)
        if missing:
            raise DeploymentError(
                f"deployment misses thread groups required by the flow "
                f"graph: {sorted(missing)}"
            )
