"""Credit-based flow control.

"A flow control mechanism can be used to limit the number of data objects
in circulation between a split and the corresponding merge operation.  This
prevents split and stream operations from filling the data object queue of
the destination threads." — paper, section 2.

An emitting instance (split or stream) with ``max_in_flight = L`` may have
at most ``L`` posted objects that have not yet been *consumed* — i.e. whose
processing at the destination operation has not completed.  A post beyond
the limit suspends the emitting generator; completing the processing of one
of its objects returns a credit and resumes it.  Section 6 of the paper
applies exactly this to the streams generating multiplication requests,
enabling iterations to interleave (Fig. 6).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FlowControlConfig:
    """Per-vertex flow-control setting (None disables)."""

    max_in_flight: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )


class CreditAccount:
    """Outstanding-object accounting for one emitting instance."""

    __slots__ = ("limit", "outstanding", "_blocked")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"credit limit must be >= 1, got {limit}")
        self.limit = limit
        self.outstanding = 0
        self._blocked: deque[Callable[[], None]] = deque()

    @property
    def has_credit(self) -> bool:
        """Whether another object may be posted immediately."""
        return self.outstanding < self.limit

    @property
    def blocked_count(self) -> int:
        """Number of suspended emitters waiting for credits."""
        return len(self._blocked)

    def acquire(self) -> bool:
        """Take a credit if available; returns False when exhausted."""
        if self.outstanding < self.limit:
            self.outstanding += 1
            return True
        return False

    def wait(self, resume: Callable[[], None]) -> None:
        """Register a resume callback to run when a credit returns."""
        self._blocked.append(resume)

    def release(self) -> Optional[Callable[[], None]]:
        """Return a credit; hand back a resume callback to run, if any.

        The caller (runtime) is responsible for invoking the callback —
        returning it rather than calling it keeps lock-step control over
        when generators resume relative to the simulation clock.  The
        released credit is immediately re-acquired on behalf of the resumed
        emitter's pending post.
        """
        if self.outstanding <= 0:
            raise ConfigurationError("credit released but none outstanding")
        if self._blocked:
            # Credit transfers directly to the blocked emitter.
            return self._blocked.popleft()
        self.outstanding -= 1
        return None
