"""Dynamic allocation: removing threads and nodes during execution.

The paper's headline capability: "the number of allocated nodes may
therefore be dynamically reduced.  The impact of threads removal on the
running time depends on the number of removed threads and on the iteration
step of the LU decomposition on which they are removed." (section 6).

An application triggers a change by yielding
:class:`~repro.dps.operations.RemoveThreads` from an operation body (the
LU app does so from the iteration-boundary merge).  The runtime then

1. removes the target threads from the live routing set,
2. asks the application's *migration planner* where each piece of
   per-thread state must move,
3. performs the migrations as real network transfers (they cost time —
   this is why removal timing matters), and
4. deactivates nodes left with no live threads, recording the allocation
   change for dynamic-efficiency accounting.

For scripted experiments an :class:`AllocationSchedule` describes the
paper's strategies ("kill 4 after iteration 1", "kill 2 after it. 2 + 2
after it. 3") declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.dps.deployment import ThreadId
from repro.errors import MalleabilityError


@dataclass(frozen=True)
class Migration:
    """One piece of thread state to move during a reallocation."""

    key: Any
    src: ThreadId
    dst: ThreadId
    size: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise MalleabilityError(f"migration size must be >= 0, got {self.size!r}")


#: Planner signature: ``plan(group, states, survivors) -> migrations``.
#:
#: ``states`` maps **every** thread of the group (removed and surviving) to
#: its state dict; ``survivors`` lists the threads that remain, in index
#: order.  The planner must move all state off removed threads, and may
#: also move state **between survivors**: when ownership is a function of
#: the group size (e.g. column block ``j`` lives on thread ``j % P``),
#: shrinking the group relocates blocks whose owner changed even though
#: their old host survives.
MigrationPlanner = Callable[
    [str, Mapping[ThreadId, Mapping[Any, Any]], Sequence[ThreadId]],
    Sequence[Migration],
]


def round_robin_planner(
    size_of: Callable[[Any, Any], float] | None = None,
) -> MigrationPlanner:
    """Default planner: spread removed threads' entries over survivors.

    ``size_of(key, value)`` provides transfer sizes; by default values with
    an ``nbytes`` attribute use it and everything else counts as 0 bytes
    (metadata-only state).  Survivor state is left in place.
    """

    def default_size(key: Any, value: Any) -> float:
        return float(getattr(value, "nbytes", 0.0))

    sizer = size_of or default_size

    def plan(
        group: str,
        states: Mapping[ThreadId, Mapping[Any, Any]],
        survivors: Sequence[ThreadId],
    ) -> list[Migration]:
        if not survivors:
            raise MalleabilityError(
                f"cannot migrate state of group {group!r}: no surviving threads"
            )
        survivor_set = set(survivors)
        migrations = []
        slot = 0
        for src in sorted(states):
            if src in survivor_set:
                continue
            for key, value in states[src].items():
                dst = survivors[slot % len(survivors)]
                slot += 1
                migrations.append(
                    Migration(key=key, src=src, dst=dst, size=sizer(key, value), payload=value)
                )
        return migrations

    return plan


def modulo_owner_planner(
    key_index: Callable[[Any], Optional[int]],
    size_of: Callable[[Any, Any], float],
) -> MigrationPlanner:
    """Planner for ``owner(j) = j % P`` data distributions (the LU layout).

    ``key_index`` extracts the distribution index from a state key (or
    returns ``None`` for keys that should not move unless their host is
    removed).  After the group shrinks to ``P'`` threads, every entry moves
    to ``survivors[j % P']`` — including entries whose current host
    survives but is no longer the owner.
    """

    def plan(
        group: str,
        states: Mapping[ThreadId, Mapping[Any, Any]],
        survivors: Sequence[ThreadId],
    ) -> list[Migration]:
        if not survivors:
            raise MalleabilityError(
                f"cannot migrate state of group {group!r}: no surviving threads"
            )
        survivor_set = set(survivors)
        migrations = []
        overflow = 0
        for src in sorted(states):
            for key, value in states[src].items():
                j = key_index(key)
                if j is None:
                    if src in survivor_set:
                        continue  # stays with its surviving host
                    dst = survivors[overflow % len(survivors)]
                    overflow += 1
                else:
                    dst = survivors[int(j) % len(survivors)]
                    if dst == src:
                        continue  # already in place
                migrations.append(
                    Migration(
                        key=key, src=src, dst=dst, size=size_of(key, value), payload=value
                    )
                )
        return migrations

    return plan


@dataclass(frozen=True)
class AllocationEvent:
    """One scheduled allocation change: remove threads after a phase."""

    after_phase: str
    group: str
    thread_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.thread_indices:
            raise MalleabilityError("AllocationEvent needs at least one thread index")


@dataclass(frozen=True)
class AllocationSchedule:
    """A scripted dynamic-allocation strategy.

    The paper's Figure 12 strategies map to::

        kill 4 after it. 1   -> [AllocationEvent("iter1", "workers", (4,5,6,7))]
        kill 4 after it. 4   -> [AllocationEvent("iter4", "workers", (4,5,6,7))]
        kill 2 after it. 2
          + 2 after it. 3    -> [AllocationEvent("iter2", "workers", (6,7)),
                                 AllocationEvent("iter3", "workers", (4,5))]
    """

    events: tuple[AllocationEvent, ...] = ()
    name: str = "static"

    def removals_after(self, phase: str) -> list[AllocationEvent]:
        """Events triggered at the end of ``phase``."""
        return [e for e in self.events if e.after_phase == phase]

    @property
    def total_removed(self) -> int:
        """Total number of threads removed over the run."""
        return sum(len(e.thread_indices) for e in self.events)


#: No dynamic changes: the conventional static allocation.
STATIC = AllocationSchedule(events=(), name="static")
