"""The Dynamic Parallel Schedules (DPS) framework, reimplemented in Python.

DPS (Gerlach & Hersch, IPDPS 2003) describes parallel applications as
directed acyclic flow graphs of *operations* — leaf, split, merge and
stream — exchanging strongly typed *data objects* routed onto *DPS threads*
by user-defined routing functions.  Execution is macro-dataflow: fully
pipelined and asynchronous, with per-thread data-object queues and an
optional credit-based flow-control mechanism.

This reimplementation preserves the concepts the paper's simulator relies
on:

* operations are **generators**; every ``yield`` is an atomic-step boundary
  (the paper suspends OS threads at the same points),
* the runtime executes real application and framework code during
  simulation (routing functions, instance creation, flow control,
  malleability), which is what "direct execution" means,
* execution is backend-pluggable: the paper's simulator
  (:mod:`repro.sim`) and the ground-truth testbed (:mod:`repro.testbed`)
  drive the *same* runtime.
"""

from repro.dps.data_objects import DataObject, Frame
from repro.dps.serializer import (
    CountingSerializer,
    SerializedSizeInfo,
    payload_nbytes,
)
from repro.dps.operations import (
    Compute,
    KernelSpec,
    LeafOperation,
    MergeOperation,
    OperationContext,
    Post,
    RemoveThreads,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import (
    Broadcast,
    ByMetaKey,
    Constant,
    Modulo,
    RoundRobin,
    RoutingFunction,
)
from repro.dps.flowgraph import FlowGraph, VertexKind
from repro.dps.deployment import Deployment, ThreadId
from repro.dps.flow_control import FlowControlConfig
from repro.dps.backend import ExecutionBackend
from repro.dps.runtime import Runtime, RunResult
from repro.dps.malleability import AllocationEvent, AllocationSchedule, Migration, MigrationPlanner

__all__ = [
    "DataObject",
    "Frame",
    "CountingSerializer",
    "SerializedSizeInfo",
    "payload_nbytes",
    "Compute",
    "KernelSpec",
    "LeafOperation",
    "MergeOperation",
    "OperationContext",
    "Post",
    "RemoveThreads",
    "SplitOperation",
    "StreamOperation",
    "RoutingFunction",
    "RoundRobin",
    "Modulo",
    "Constant",
    "Broadcast",
    "ByMetaKey",
    "FlowGraph",
    "VertexKind",
    "Deployment",
    "ThreadId",
    "FlowControlConfig",
    "ExecutionBackend",
    "Runtime",
    "RunResult",
    "AllocationEvent",
    "AllocationSchedule",
    "Migration",
    "MigrationPlanner",
]
