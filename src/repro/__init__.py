"""repro — reproduction of *"A simulator for parallel applications with
dynamically varying compute node allocation"* (Schaeli, Gerlach, Hersch;
IPPS 2006).

Layers (bottom-up):

* :mod:`repro.des` — discrete-event kernel and fluid resource pools;
* :mod:`repro.netmodel`, :mod:`repro.cpumodel` — the paper's network and
  processing-power models plus their ground-truth counterparts;
* :mod:`repro.dps` — the DPS parallelization framework: flow graphs,
  split/merge/stream operations, routing functions, DPS threads, flow
  control and dynamic allocation;
* :mod:`repro.sim` — **the paper's contribution**: the direct-execution
  simulator with partial direct execution and dynamic efficiency;
* :mod:`repro.testbed` — the virtual cluster standing in for the paper's
  real testbed ("measurements");
* :mod:`repro.apps` — block LU factorization (the paper's test
  application), matrix multiplication, an image pipeline;
* :mod:`repro.clusterserver` — the paper's future work: a cluster serving
  multiple malleable applications;
* :mod:`repro.analysis` — metrics, prediction-error studies, sweeps.

Quickstart::

    from repro import (
        LUApplication, LUConfig, DPSSimulator, PAPER_CLUSTER,
        CostModelProvider, LUCostModel,
    )

    cfg = LUConfig(n=1296, r=162, num_threads=4, num_nodes=4)
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(LUCostModel(PAPER_CLUSTER.machine, cfg.r)),
    )
    result = sim.run(LUApplication(cfg))
    print(f"predicted running time: {result.predicted_time:.1f} s")
"""

from repro.errors import (
    ConfigurationError,
    CostModelError,
    DeadlockError,
    DeploymentError,
    FlowGraphError,
    MalleabilityError,
    ReproError,
    RoutingError,
    SerializationError,
    SimulationError,
    VerificationError,
)
from repro.des import Kernel
from repro.netmodel import (
    AnalyticNetwork,
    BackplaneStarNetwork,
    EqualShareStarNetwork,
    MaxMinStarNetwork,
    NetworkParams,
    PacketNetwork,
    calibrate,
)
from repro.netmodel.params import FAST_ETHERNET, GIGABIT_ETHERNET
from repro.cpumodel import (
    CommCostParams,
    MachineProfile,
    PENTIUM4_2800,
    ULTRASPARC_II_440,
)
from repro.dps import (
    AllocationEvent,
    AllocationSchedule,
    Compute,
    DataObject,
    Deployment,
    ExecutionBackend,
    FlowGraph,
    KernelSpec,
    LeafOperation,
    MergeOperation,
    Post,
    RemoveThreads,
    RoundRobin,
    Runtime,
    SplitOperation,
    StreamOperation,
)
from repro.dps.trace import TraceLevel
from repro.sim import (
    CostModelProvider,
    DPSSimulator,
    DirectExecutionProvider,
    MeasureFirstNProvider,
    PAPER_CLUSTER,
    PlatformSpec,
    SimulationMode,
    SimulationResult,
    dynamic_efficiency,
    mean_efficiency,
)
from repro.sim.providers import HostCalibration, MachineCostModel, TableCostModel
from repro.testbed import Measurement, TestbedExecutor, VirtualCluster
from repro.apps.lu import LUApplication, LUConfig, LUCostModel
from repro.apps.matmul import MatmulApplication, MatmulConfig
from repro.apps.imgpipe import ImagePipelineApplication, ImagePipelineConfig
from repro.apps.stencil import StencilApplication, StencilConfig, StencilCostModel
from repro.apps.sort import (
    SampleSortApplication,
    SampleSortConfig,
    SampleSortCostModel,
)
from repro.clusterserver import (
    AdaptiveEfficiencyScheduler,
    ClusterServer,
    EquipartitionScheduler,
    ShardedServer,
    StaticScheduler,
    synthetic_workload,
)
from repro.analysis import PredictionStudy, SweepCase, run_lu_case, sweep

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "FlowGraphError",
    "RoutingError",
    "SerializationError",
    "DeploymentError",
    "MalleabilityError",
    "CostModelError",
    "VerificationError",
    # kernel & models
    "Kernel",
    "NetworkParams",
    "FAST_ETHERNET",
    "GIGABIT_ETHERNET",
    "AnalyticNetwork",
    "BackplaneStarNetwork",
    "EqualShareStarNetwork",
    "MaxMinStarNetwork",
    "PacketNetwork",
    "calibrate",
    "MachineProfile",
    "ULTRASPARC_II_440",
    "PENTIUM4_2800",
    "CommCostParams",
    # DPS
    "DataObject",
    "KernelSpec",
    "Compute",
    "Post",
    "RemoveThreads",
    "LeafOperation",
    "SplitOperation",
    "MergeOperation",
    "StreamOperation",
    "RoundRobin",
    "FlowGraph",
    "Deployment",
    "ExecutionBackend",
    "Runtime",
    "TraceLevel",
    "AllocationEvent",
    "AllocationSchedule",
    # simulator
    "DPSSimulator",
    "SimulationResult",
    "SimulationMode",
    "PlatformSpec",
    "PAPER_CLUSTER",
    "CostModelProvider",
    "DirectExecutionProvider",
    "MeasureFirstNProvider",
    "HostCalibration",
    "MachineCostModel",
    "TableCostModel",
    "dynamic_efficiency",
    "mean_efficiency",
    # testbed
    "TestbedExecutor",
    "VirtualCluster",
    "Measurement",
    # apps
    "LUApplication",
    "LUConfig",
    "LUCostModel",
    "MatmulApplication",
    "MatmulConfig",
    "ImagePipelineApplication",
    "ImagePipelineConfig",
    "StencilApplication",
    "StencilConfig",
    "StencilCostModel",
    "SampleSortApplication",
    "SampleSortConfig",
    "SampleSortCostModel",
    # cluster server
    "ClusterServer",
    "ShardedServer",
    "StaticScheduler",
    "EquipartitionScheduler",
    "AdaptiveEfficiencyScheduler",
    "synthetic_workload",
    # analysis
    "PredictionStudy",
    "SweepCase",
    "run_lu_case",
    "sweep",
]
