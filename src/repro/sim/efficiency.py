"""Dynamic efficiency: resource-utilization efficiency as a function of time.

The paper's central metric: "We introduce the concept of dynamic efficiency
which expresses the resource utilization efficiency as a function of time."
For the LU evaluation (Fig. 11) it is computed per iteration:

    efficiency(iter) = serial_work(iter) / (N_active(iter) * T(iter))

where ``serial_work`` is the total uncontended compute time of the
iteration's atomic steps (what one dedicated node would need), ``N_active``
the time-weighted number of allocated nodes during the iteration, and
``T`` its wall duration.  Removing underused nodes raises the efficiency of
subsequent iterations — exactly the effect of Fig. 11's "kill 4 after
iteration 1" curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dps.runtime import RunResult
from repro.dps.trace import TraceLevel


@dataclass(frozen=True)
class PhaseEfficiency:
    """Efficiency of one phase (LU iteration) of a run."""

    label: str
    start: float
    end: float
    work: float
    mean_nodes: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def efficiency(self) -> float:
        """Serial work over (nodes x wall time); in [0, 1] for real runs."""
        denom = self.mean_nodes * self.duration
        return self.work / denom if denom > 0 else 0.0


def _mean_active_nodes(result: RunResult, start: float, end: float) -> float:
    """Time-weighted average allocation size over [start, end]."""
    if end <= start:
        return float(len(result.active_nodes_at(start)))
    timeline = result.allocation_timeline
    total = 0.0
    for i, (t, nodes) in enumerate(timeline):
        seg_start = max(start, t)
        seg_end = end if i + 1 >= len(timeline) else min(end, timeline[i + 1][0])
        if seg_end > seg_start:
            total += (seg_end - seg_start) * len(nodes)
    return total / (end - start)


def dynamic_efficiency(result: RunResult) -> list[PhaseEfficiency]:
    """Per-phase efficiency series of a run (the Fig. 11 quantity).

    Requires phases to have been marked (the LU app marks one per
    iteration) and at least SUMMARY tracing.
    """
    if result.trace.level < TraceLevel.SUMMARY:
        raise ValueError("dynamic efficiency needs SUMMARY or FULL tracing")
    series = []
    for label, start, end in result.phase_intervals():
        work = result.trace.phase_work.get(label, 0.0)
        series.append(
            PhaseEfficiency(
                label=label,
                start=start,
                end=end,
                work=work,
                mean_nodes=_mean_active_nodes(result, start, end),
            )
        )
    return series


def mean_efficiency(result: RunResult) -> float:
    """Whole-run efficiency: total work over integral of allocation size.

    This is the quantity a cluster operator wants to maximize; the paper
    argues dynamic deallocation raises it because freed nodes can serve
    other applications.
    """
    node_seconds = _mean_active_nodes(result, 0.0, result.makespan) * result.makespan
    if node_seconds <= 0:
        return 0.0
    return result.total_work / node_seconds


def utilization_timeline(
    result: RunResult, buckets: int = 100
) -> list[tuple[float, float]]:
    """Coarse (time, busy-fraction) series from a FULL trace.

    Busy fraction is compute work per allocated-node-second in each
    bucket.  Requires ``TraceLevel.FULL``.
    """
    if result.trace.level < TraceLevel.FULL:
        raise ValueError("utilization_timeline requires TraceLevel.FULL")
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    makespan = result.makespan
    if makespan <= 0:
        return []
    width = makespan / buckets
    work = [0.0] * buckets
    for step in result.trace.steps:
        # Spread the step's uncontended work uniformly over its span.
        span = max(step.duration, 1e-15)
        b0 = min(buckets - 1, int(step.start / width))
        b1 = min(buckets - 1, int(step.end / width))
        for b in range(b0, b1 + 1):
            lo = max(step.start, b * width)
            hi = min(step.end, (b + 1) * width)
            if hi > lo:
                work[b] += step.work * (hi - lo) / span
    series = []
    for b in range(buckets):
        t0, t1 = b * width, (b + 1) * width
        nodes = _mean_active_nodes(result, t0, t1)
        denom = nodes * width
        series.append((t0, work[b] / denom if denom > 0 else 0.0))
    return series
