"""Simulation modes, as contrasted in the paper's Table 1."""

from __future__ import annotations

import enum


class SimulationMode(enum.Enum):
    """How atomic-step durations and payloads are handled.

    * ``DIRECT`` — direct execution: kernels really run (payloads must be
      allocated) and are timed on the simulation host, scaled to the
      target machine.
    * ``PDEXEC`` — partial direct execution: kernel durations come from a
      cost model; payloads are still allocated and computed so results can
      be verified.
    * ``PDEXEC_NOALLOC`` — partial direct execution with allocation
      elision: payloads are never allocated; data objects carry declared
      sizes only ("the memory of data structures does not need to be
      allocated", paper section 4).
    """

    DIRECT = "direct"
    PDEXEC = "pdexec"
    PDEXEC_NOALLOC = "pdexec_noalloc"

    @property
    def allocates(self) -> bool:
        """Whether payloads exist in this mode."""
        return self is not SimulationMode.PDEXEC_NOALLOC

    @property
    def runs_kernels(self) -> bool:
        """Whether numerical kernels actually execute in this mode."""
        return self is not SimulationMode.PDEXEC_NOALLOC
