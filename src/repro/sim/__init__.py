"""The paper's contribution: a direct-execution simulator for DPS applications.

The simulator executes the real DPS runtime (:mod:`repro.dps`) over the
paper's performance models — the equal-share star network and the
even-share CPU model with communication costs — and derives atomic-step
durations by

* **direct execution** (:class:`~repro.sim.providers.DirectExecutionProvider`):
  actually running the kernels and measuring them, scaled to the target
  machine, or
* **partial direct execution**
  (:class:`~repro.sim.providers.CostModelProvider`,
  :class:`~repro.sim.providers.MeasureFirstNProvider`): replacing
  computations by duration estimates, optionally eliding payload
  allocation entirely (NOALLOC).

:class:`~repro.sim.simulator.DPSSimulator` packages all of this behind the
"activate a compilation flag" experience of the paper: the same application
object runs under the simulator or under the ground-truth testbed.
"""

from repro.sim.platform import PlatformSpec, PAPER_CLUSTER
from repro.sim.modes import SimulationMode
from repro.sim.providers import (
    CostModel,
    CostModelProvider,
    DirectExecutionProvider,
    MachineCostModel,
    MeasureFirstNProvider,
    TableCostModel,
)
from repro.sim.simulator import DPSSimulator, SimulationResult
from repro.sim.efficiency import (
    PhaseEfficiency,
    dynamic_efficiency,
    mean_efficiency,
    utilization_timeline,
)

__all__ = [
    "PlatformSpec",
    "PAPER_CLUSTER",
    "SimulationMode",
    "CostModel",
    "MachineCostModel",
    "TableCostModel",
    "CostModelProvider",
    "DirectExecutionProvider",
    "MeasureFirstNProvider",
    "DPSSimulator",
    "SimulationResult",
    "PhaseEfficiency",
    "dynamic_efficiency",
    "mean_efficiency",
    "utilization_timeline",
]
