"""Platform specification: the "characterize once per machine" parameter set.

Paper, section 4: the latency/bandwidth parameters and the communication
processing costs "are constant and specific to the hardware onto which the
parallel application is running [...] the characterization of these
communication and processing parameters is independent of the simulated
applications, and thus needs to be carried out only once."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpumodel.commcost import CommCostParams
from repro.cpumodel.machines import MachineProfile, ULTRASPARC_II_440
from repro.netmodel.params import FAST_ETHERNET, NetworkParams
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class PlatformSpec:
    """Everything the simulator needs to know about the target machine."""

    machine: MachineProfile = ULTRASPARC_II_440
    network: NetworkParams = FAST_ETHERNET
    comm_cost: CommCostParams = field(default_factory=CommCostParams)
    local_delivery_delay: float = 2e-6

    def __post_init__(self) -> None:
        check_non_negative("local_delivery_delay", self.local_delivery_delay)

    def with_network(self, network: NetworkParams) -> "PlatformSpec":
        """A copy targeting a different interconnect (what-if studies)."""
        return replace(self, network=network)

    def with_machine(self, machine: MachineProfile) -> "PlatformSpec":
        """A copy targeting different compute nodes."""
        return replace(self, machine=machine)


#: The paper's evaluation platform: 440 MHz UltraSparc II workstations on
#: switched Fast Ethernet.
PAPER_CLUSTER = PlatformSpec()
