"""The DPS simulator facade.

Assembles the paper's models — equal-share star network, even-share CPU
with communication costs — around the DPS runtime, runs an application,
and reports both the **predicted running time** of the application and the
**cost of the simulation itself** (wall time, events, memory), the
quantities contrasted in Table 1.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps.base import Application
from repro.cpumodel.base import CpuModel
from repro.cpumodel.shared import SharedCpuModel
from repro.cpumodel.commcost import CommCostModel
from repro.des.kernel import Kernel
from repro.dps.backend import ExecutionBackend
from repro.dps.runtime import DurationProvider, Runtime, RunResult
from repro.dps.trace import TraceLevel
from repro.netmodel.base import NetworkModel
from repro.netmodel.star import EqualShareStarNetwork
from repro.sim.platform import PlatformSpec
from repro.util.units import MB


@dataclass
class SimulationResult:
    """Prediction plus simulation-cost metrics for one simulated run."""

    #: the simulator's prediction of the application's running time [s]
    predicted_time: float
    #: full runtime result (trace, phases, allocation timeline)
    run: RunResult
    #: wall-clock time the simulation itself took on the host [s]
    simulation_wall_time: float
    #: peak traced memory during the simulation [bytes]; None if not measured
    simulation_peak_memory: Optional[float]
    #: number of kernel events dispatched (simulation cost proxy)
    events: int
    #: the runtime that executed the app (thread states, for verification)
    runtime: Optional["Runtime"] = None

    @property
    def simulation_peak_memory_mb(self) -> Optional[float]:
        """Peak traced memory in MB (None when not measured)."""
        if self.simulation_peak_memory is None:
            return None
        return self.simulation_peak_memory / MB


class DPSSimulator:
    """Runs DPS applications under the paper's performance models.

    Parameters
    ----------
    platform:
        Target machine characterization (network, CPU, comm costs).
    provider:
        Duration provider — direct execution or PDEXEC (see
        :mod:`repro.sim.providers`).
    trace_level:
        Execution detail to retain.
    network_factory:
        Override the network model class (ablation studies, scenario
        specs); defaults to the paper's :class:`EqualShareStarNetwork`.
    cpu_factory:
        Override the CPU model: a ``kernel -> CpuModel`` callable
        (scenario specs bind their registry entry here); defaults to the
        paper's :class:`SharedCpuModel` over the platform's
        communication costs.
    measure_memory:
        Track peak memory with :mod:`tracemalloc` (adds host overhead;
        used by the Table 1 bench).
    incremental:
        Rate allocation mode of the assembled models; ``False`` restores
        full recomputation on every membership change (the benchmark
        baseline).  Applied to the default network factory and the CPU
        model; a custom ``network_factory`` manages its own flags.
    verify_incremental:
        Shadow every incremental update with a full recompute and raise on
        divergence (the equivalence-test mode; slow).
    """

    def __init__(
        self,
        platform: PlatformSpec,
        provider: DurationProvider,
        trace_level: TraceLevel = TraceLevel.SUMMARY,
        network_factory: Optional[type] = None,
        measure_memory: bool = False,
        incremental: bool = True,
        verify_incremental: bool = False,
        cpu_factory: Optional[Callable[[Kernel], "CpuModel"]] = None,
    ) -> None:
        self.platform = platform
        self.provider = provider
        self.trace_level = trace_level
        self.network_factory = network_factory
        self.cpu_factory = cpu_factory
        self.measure_memory = measure_memory
        self.incremental = incremental
        self.verify_incremental = verify_incremental

    # ------------------------------------------------------------------ run
    def build_backend(self) -> ExecutionBackend:
        """Assemble kernel + models for one run (fresh every time)."""
        kernel = Kernel()
        if self.network_factory is not None:
            network: NetworkModel = self.network_factory(kernel, self.platform.network)
        else:
            network = EqualShareStarNetwork(
                kernel,
                self.platform.network,
                incremental=self.incremental,
                verify_incremental=self.verify_incremental,
            )
        if self.cpu_factory is not None:
            cpu: CpuModel = self.cpu_factory(kernel)
        else:
            cpu = SharedCpuModel(
                kernel,
                CommCostModel(self.platform.comm_cost),
                incremental=self.incremental,
                verify_incremental=self.verify_incremental,
            )
        return ExecutionBackend(
            kernel,
            cpu,
            network,
            local_delivery_delay=self.platform.local_delivery_delay,
        )

    def run(self, app: Application) -> SimulationResult:
        """Simulate ``app`` to completion."""
        if self.measure_memory:
            tracemalloc.start()
        wall_start = time.perf_counter()
        backend = self.build_backend()
        runtime = Runtime(
            app.build_graph(),
            app.build_deployment(),
            backend,
            self.provider,
            trace_level=self.trace_level,
            migration_planner=app.migration_planner(),
        )
        app.bootstrap(runtime)
        run_result = runtime.run()
        wall = time.perf_counter() - wall_start
        peak: Optional[float] = None
        if self.measure_memory:
            _, peak_traced = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak = float(peak_traced)
        return SimulationResult(
            predicted_time=run_result.makespan,
            run=run_result,
            simulation_wall_time=wall,
            simulation_peak_memory=peak,
            events=run_result.events_executed,
            runtime=runtime,
        )
