"""Duration providers: direct execution and partial direct execution.

Paper, section 4: "the processing time of each atomic step can be recorded
through direct execution, and be used as its optimistic running time [...]
the prohibitive running time of direct execution simulation may be reduced
by passing an estimate of the computation time instead of performing the
actual computations.  We refer to this technique as partial direct
execution.  The time estimate is simply a number of microseconds, and may
thus come from any source."

Three provider families implement this:

* :class:`DirectExecutionProvider` — run the kernel for real on the
  simulation host, time it, scale host seconds to target seconds.
* :class:`CostModelProvider` — PDEXEC: durations come from a
  :class:`CostModel`; kernels optionally still run (so results can be
  verified) or are skipped entirely (NOALLOC).
* :class:`MeasureFirstNProvider` — the paper's hybrid: "we may measure the
  running times of the first n instances of an operation, and reuse the
  averaged measure for the remaining instances."
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Any, Callable, Mapping, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.cpumodel.machines import MachineProfile
from repro.dps.operations import Compute, KernelSpec, OperationContext
from repro.dps.runtime import DurationProvider
from repro.errors import CostModelError
from repro.util.validation import check_positive


# --------------------------------------------------------------------------
# cost models (PDEXEC duration sources)
# --------------------------------------------------------------------------


class CostModel:
    """Maps a :class:`KernelSpec` to an estimated duration in seconds."""

    def duration(self, spec: KernelSpec) -> float:
        raise NotImplementedError


class MachineCostModel(CostModel):
    """Analytic model: flops over the machine profile's sustained rate.

    ``rate_factors`` applies per-kernel multiplicative corrections — the
    calibration produced by benchmarking kernels on the target machine
    (the paper's "benchmarked times").  A factor above 1 means the kernel
    runs slower than the profile's plateau predicts.
    """

    def __init__(
        self,
        machine: MachineProfile,
        rate_factors: Optional[Mapping[str, float]] = None,
        fixed_costs: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.machine = machine
        self.rate_factors = dict(rate_factors or {})
        self.fixed_costs = dict(fixed_costs or {})

    def duration(self, spec: KernelSpec) -> float:
        """Profile-predicted seconds, with per-kernel calibration applied."""
        base = self.machine.seconds_for(spec.flops, spec.working_set)
        factor = self.rate_factors.get(spec.name, 1.0)
        fixed = self.fixed_costs.get(spec.name, 0.0)
        return base * factor + fixed


class TableCostModel(CostModel):
    """Benchmark-table model: per-kernel durations, keyed by name.

    Entries may be plain seconds or callables ``spec -> seconds`` (for
    parameter-dependent benchmark interpolations).  Unknown kernels fall
    back to an optional inner model.
    """

    def __init__(
        self,
        table: Mapping[str, float | Callable[[KernelSpec], float]],
        fallback: Optional[CostModel] = None,
    ) -> None:
        self.table = dict(table)
        self.fallback = fallback

    def duration(self, spec: KernelSpec) -> float:
        """Table lookup by kernel name; falls back to the inner model."""
        entry = self.table.get(spec.name)
        if entry is None:
            if self.fallback is None:
                raise CostModelError(
                    f"no benchmark entry or fallback for kernel {spec.name!r}"
                )
            return self.fallback.duration(spec)
        if callable(entry):
            return float(entry(spec))
        return float(entry)


# --------------------------------------------------------------------------
# providers
# --------------------------------------------------------------------------


class CostModelProvider(DurationProvider):
    """Partial direct execution: durations from a cost model.

    Parameters
    ----------
    cost_model:
        Duration source for every kernel.
    run_kernels:
        When True, the kernel function still executes (its wall time is
        ignored) so payloads stay correct and results can be verified —
        "it is also possible to combine direct execution and partial
        direct execution".  When False (NOALLOC), kernels never run and
        the generator receives ``None``.
    """

    def __init__(self, cost_model: CostModel, run_kernels: bool = False) -> None:
        self.cost_model = cost_model
        self.run_kernels = run_kernels
        self.evaluations = 0

    def evaluate(self, compute: Compute, ctx: OperationContext) -> tuple[float, Any]:
        """Model the duration; optionally still run the kernel for payloads."""
        self.evaluations += 1
        duration = self.cost_model.duration(compute.spec)
        if duration < 0.0:
            raise CostModelError(
                f"cost model produced negative duration for {compute.spec.name!r}"
            )
        result = None
        if self.run_kernels and compute.fn is not None:
            result = compute.fn(*compute.args)
        return duration, result


class HostCalibration:
    """Host-speed measurement used to scale direct-execution timings.

    Runs a reference double-precision matrix multiplication on the
    simulation host and compares it with the target machine profile's
    predicted time for the same kernel, yielding the host→target scale
    factor.  The reference size should match the application's typical
    kernel granularity (the LU app calibrates at its block size).
    """

    def __init__(self, machine: MachineProfile, reference_size: int = 216, repeats: int = 3) -> None:
        self.machine = machine
        self.reference_size = int(check_positive("reference_size", reference_size))
        r = self.reference_size
        rng = np.random.default_rng(12345)
        a = rng.standard_normal((r, r))
        b = rng.standard_normal((r, r))
        a @ b  # warm up BLAS threads and caches
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            a @ b
            best = min(best, time.perf_counter() - t0)
        self.host_seconds = best
        flops = 2.0 * r**3
        working_set = 3.0 * 8.0 * r * r
        self.target_seconds = machine.seconds_for(flops, working_set)
        #: multiply host wall seconds by this to get target seconds
        self.scale = self.target_seconds / max(self.host_seconds, 1e-12)


class DirectExecutionProvider(DurationProvider):
    """Direct execution: run the kernel for real and time it.

    The host wall time of each kernel invocation, multiplied by the
    calibration scale, becomes the atomic step's optimistic duration on
    the target machine.  This reproduces the paper's portability caveat:
    predictions depend on the host/target speed ratio staying uniform
    across kernels, which PDEXEC removes (Table 1).
    """

    def __init__(self, calibration: HostCalibration, min_duration: float = 0.0) -> None:
        self.calibration = calibration
        self.min_duration = float(min_duration)
        self.evaluations = 0
        #: cumulative host seconds spent really executing kernels
        self.host_compute_seconds = 0.0

    def evaluate(self, compute: Compute, ctx: OperationContext) -> tuple[float, Any]:
        """Run the kernel for real; host wall time scaled to target seconds."""
        self.evaluations += 1
        if compute.fn is None:
            # Nothing to execute: framework-side handling charged at a
            # nominal modelled cost of zero host time.
            return self.min_duration, None
        t0 = time.perf_counter()
        result = compute.fn(*compute.args)
        host = time.perf_counter() - t0
        self.host_compute_seconds += host
        return max(self.min_duration, host * self.calibration.scale), result


class MeasureFirstNProvider(DurationProvider):
    """Measure the first ``n`` instances of each kernel, reuse the average.

    "For parallel programs that perform the same operations repeatedly, we
    may measure the running times of the first n instances of an
    operation, and reuse the averaged measure for the remaining
    instances." — paper, section 4.  Kernels are keyed by name plus their
    ``params`` (so e.g. gemm at different block sizes calibrate
    separately); once a key has ``n`` samples, subsequent invocations skip
    real execution entirely.

    With ``persist=True`` the sample tables survive the process the way
    the network-calibration fits do (:mod:`repro.analysis.benchcache`,
    managed by ``repro cache``): tables are keyed by the target machine
    profile plus ``n``, preloaded at construction so a repeated
    direct-execution run skips the warm-up measurements entirely
    (``preloaded`` counts the kernels restored), and written back whenever
    a kernel's table fills.
    """

    def __init__(
        self,
        direct: DirectExecutionProvider,
        n: int = 3,
        run_kernels_after: bool = False,
        persist: bool = False,
    ) -> None:
        if n < 1:
            raise CostModelError(f"MeasureFirstN requires n >= 1, got {n}")
        self.direct = direct
        self.n = n
        self.run_kernels_after = run_kernels_after
        self._samples: dict[Any, list[float]] = defaultdict(list)
        self.measured = 0
        self.reused = 0
        #: kernels whose full sample table was restored from disk
        self.preloaded = 0
        self._cache_key: Optional[str] = None
        if persist:
            from repro.analysis import benchcache

            self._cache_key = benchcache.cache_key(
                direct.calibration.machine, n
            )
            cached = benchcache.load(self._cache_key)
            if cached:
                for key, values in cached.items():
                    # Only complete tables short-circuit measurement;
                    # partial ones would skew the mean toward whichever
                    # run died early.
                    if len(values) >= n:
                        self._samples[key] = values[:n]
                        self.preloaded += 1

    @staticmethod
    def _key(spec: KernelSpec) -> Any:
        return (spec.name, tuple(sorted(spec.params.items())))

    def _persist(self) -> None:
        """Write back every full sample table (best-effort)."""
        from repro.analysis import benchcache

        assert self._cache_key is not None
        benchcache.store(
            self._cache_key,
            {k: v for k, v in self._samples.items() if len(v) >= self.n},
        )

    def evaluate(self, compute: Compute, ctx: OperationContext) -> tuple[float, Any]:
        """Measure until ``n`` samples exist for the key, then reuse the mean."""
        key = self._key(compute.spec)
        samples = self._samples[key]
        if len(samples) < self.n:
            duration, result = self.direct.evaluate(compute, ctx)
            samples.append(duration)
            self.measured += 1
            if self._cache_key is not None and len(samples) == self.n:
                self._persist()
            return duration, result
        self.reused += 1
        duration = sum(samples) / len(samples)
        result = None
        if self.run_kernels_after and compute.fn is not None:
            result = compute.fn(*compute.args)
        return duration, result
