"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch any failure from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event kernel or a model reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulation cannot make progress but processes are still waiting.

    Raised when the event queue drains while runtime operations (merge or
    stream operations waiting for data objects, flow-control-blocked splits)
    are still suspended.  This usually indicates a malformed flow graph or a
    routing function that sends data objects to the wrong thread.
    """


class FlowGraphError(ReproError):
    """A flow graph is structurally invalid (cycles, dangling edges...)."""


class RoutingError(ReproError):
    """A routing function produced an out-of-range or invalid thread index."""


class SerializationError(ReproError):
    """A data object could not be serialized or sized."""


class DeploymentError(ReproError):
    """Thread-to-node deployment is invalid or inconsistent."""


class MalleabilityError(ReproError):
    """An invalid dynamic allocation change was requested.

    Examples: removing a node that hosts no threads, removing more nodes
    than are allocated, or changing the allocation while a migration is
    already in flight.
    """


class CostModelError(ReproError):
    """A duration provider could not produce an estimate for an atomic step."""


class VerificationError(ReproError):
    """A numerical result failed verification (e.g. P@A != L@U)."""


class ShardCrashError(SimulationError):
    """A sharded-simulation worker process died instead of replying.

    Carries enough to diagnose the loss without the worker's cooperation:
    ``shard_id`` identifies the shard, ``last_command`` the protocol
    command in flight when the worker stopped answering, and ``exitcode``
    the process exit status (negative for a signal, e.g. -9 for SIGKILL;
    ``None`` when the worker is unaccountably silent but still alive).
    """

    def __init__(
        self,
        shard_id: int,
        last_command: str | None = None,
        exitcode: int | None = None,
    ) -> None:
        detail = f"shard {shard_id} worker died"
        if exitcode is not None:
            detail += f" with exit code {exitcode}"
        if last_command is not None:
            detail += f" while handling {last_command!r}"
        super().__init__(detail)
        self.shard_id = shard_id
        self.last_command = last_command
        self.exitcode = exitcode


class WorkerCrashError(ReproError):
    """A resident-pool worker process died while running a job.

    Raised as a ticket's failure once the pool's bounded retry budget is
    exhausted; ``attempts`` counts how many times the job was dispatched.
    """

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__(message)
        self.attempts = attempts


class DeadlineExceededError(ReproError):
    """A job overran its per-job deadline and was killed by the pool."""

    def __init__(self, message: str, deadline: float | None = None) -> None:
        super().__init__(message)
        self.deadline = deadline


class ServiceError(ReproError):
    """An HTTP error response from the scenario service (``repro serve``).

    Raised by :class:`repro.service.client.ServiceClient` for any non-2xx
    response; ``status`` is the HTTP status code and ``message`` the
    server's ``error`` text (the configuration loader's message for 400s).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
