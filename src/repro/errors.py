"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch any failure from this package with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event kernel or a model reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulation cannot make progress but processes are still waiting.

    Raised when the event queue drains while runtime operations (merge or
    stream operations waiting for data objects, flow-control-blocked splits)
    are still suspended.  This usually indicates a malformed flow graph or a
    routing function that sends data objects to the wrong thread.
    """


class FlowGraphError(ReproError):
    """A flow graph is structurally invalid (cycles, dangling edges...)."""


class RoutingError(ReproError):
    """A routing function produced an out-of-range or invalid thread index."""


class SerializationError(ReproError):
    """A data object could not be serialized or sized."""


class DeploymentError(ReproError):
    """Thread-to-node deployment is invalid or inconsistent."""


class MalleabilityError(ReproError):
    """An invalid dynamic allocation change was requested.

    Examples: removing a node that hosts no threads, removing more nodes
    than are allocated, or changing the allocation while a migration is
    already in flight.
    """


class CostModelError(ReproError):
    """A duration provider could not produce an estimate for an atomic step."""


class VerificationError(ReproError):
    """A numerical result failed verification (e.g. P@A != L@U)."""


class ServiceError(ReproError):
    """An HTTP error response from the scenario service (``repro serve``).

    Raised by :class:`repro.service.client.ServiceClient` for any non-2xx
    response; ``status`` is the HTTP status code and ``message`` the
    server's ``error`` text (the configuration loader's message for 400s).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
