"""Malleable-job workloads for the cluster-server simulation.

A job is a sequence of *phases* (think LU iterations), each with a serial
work amount and an efficiency function of the node count.  This is exactly
the information the DPS simulator's dynamic-efficiency output provides for
a real application (Fig. 11): work per iteration and how efficiently extra
nodes are used in each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


from repro.errors import ConfigurationError
from repro.util.rng import SeedSequenceFactory

#: efficiency(nodes) -> (0, 1]; phase rate on n nodes = n * efficiency(n).
EfficiencyFn = Callable[[int], float]


class AmdahlEfficiency:
    """Amdahl-style efficiency curve with a given parallel fraction.

    A class (rather than a closure) so that job specs are picklable —
    the sharded server's process-pool mode ships specs to worker
    processes (:mod:`repro.clusterserver.sharded`).  Custom efficiency
    callables work too, but must likewise be picklable to use process
    shards.
    """

    __slots__ = ("parallel_fraction",)

    def __init__(self, parallel_fraction: float) -> None:
        if not 0.0 <= parallel_fraction <= 1.0:
            raise ConfigurationError("parallel_fraction must be in [0, 1]")
        self.parallel_fraction = parallel_fraction

    def __call__(self, nodes: int) -> float:
        if nodes <= 1:
            return 1.0
        serial = 1.0 - self.parallel_fraction
        speedup = 1.0 / (serial + self.parallel_fraction / nodes)
        return speedup / nodes

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AmdahlEfficiency({self.parallel_fraction!r})"

    def __getstate__(self):
        return self.parallel_fraction

    def __setstate__(self, state):
        self.parallel_fraction = state


def amdahl_efficiency(parallel_fraction: float) -> EfficiencyFn:
    """Amdahl-style efficiency curve with the given parallel fraction."""
    return AmdahlEfficiency(parallel_fraction)


@dataclass(frozen=True)
class JobSpec:
    """One malleable job: arrival, phases and efficiency curves.

    ``preferred_nodes`` is the allocation a user would request from a
    conventional (rigid/moldable) scheduler; malleable policies are free
    to deviate within ``[min_nodes, max_nodes]``.
    """

    name: str
    arrival: float
    phase_work: tuple[float, ...]
    efficiency: EfficiencyFn
    max_nodes: int = 64
    min_nodes: int = 1
    preferred_nodes: int = 0  # 0: default to max_nodes

    def __post_init__(self) -> None:
        if self.arrival < 0.0:
            raise ConfigurationError("arrival time must be >= 0")
        if not self.phase_work:
            raise ConfigurationError("a job needs at least one phase")
        if any(w <= 0 for w in self.phase_work):
            raise ConfigurationError("phase work must be positive")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ConfigurationError("need 1 <= min_nodes <= max_nodes")
        if self.preferred_nodes and not (
            self.min_nodes <= self.preferred_nodes <= self.max_nodes
        ):
            raise ConfigurationError(
                "preferred_nodes must lie in [min_nodes, max_nodes]"
            )

    @property
    def total_work(self) -> float:
        return sum(self.phase_work)

    @property
    def request(self) -> int:
        """The job's conventional allocation request."""
        return self.preferred_nodes or self.max_nodes

    def ideal_duration(self) -> float:
        """Run time on a dedicated cluster at the requested allocation."""
        n = self.request
        rate = n * self.efficiency(n)
        return self.total_work / rate if rate > 0 else float("inf")


class MalleableJob:
    """Runtime state of one job inside the server simulation."""

    def __init__(self, spec: JobSpec, index: int = -1) -> None:
        self.spec = spec
        #: arrival-order index (the fault layer's stable job identity)
        self.index = index
        self.phase = 0
        self.remaining_in_phase = spec.phase_work[0]
        self.nodes = 0
        #: degraded-node slowdown in (0, 1]; 1.0 (the default) is exact
        #: under IEEE multiplication, so fault-free runs are bit-unchanged
        self.rate_factor = 1.0
        #: set when the fault layer exhausts the job's retry budget
        self.failed = False
        self.started_at: float = float("nan")
        self.finished_at: float = float("nan")
        #: integral of allocated nodes over time (for efficiency accounting)
        self.node_seconds = 0.0

    @property
    def done(self) -> bool:
        return self.phase >= len(self.spec.phase_work)

    @property
    def remaining_work(self) -> float:
        if self.done:
            return 0.0
        return self.remaining_in_phase + sum(
            self.spec.phase_work[self.phase + 1 :]
        )

    def rate(self) -> float:
        """Work completed per second at the current allocation."""
        if self.done or self.nodes <= 0:
            return 0.0
        return self.nodes * self.spec.efficiency(self.nodes) * self.rate_factor

    def current_efficiency(self) -> float:
        """Efficiency at the current allocation (0 when idle)."""
        if self.done or self.nodes <= 0:
            return 0.0
        return self.spec.efficiency(self.nodes)

    def advance(self, dt: float) -> None:
        """Progress the job by ``dt`` seconds at its current rate."""
        if dt < 0:
            raise ConfigurationError("dt must be >= 0")
        self.node_seconds += self.nodes * dt
        progress = self.rate() * dt
        while progress > 0 and not self.done:
            if progress < self.remaining_in_phase - 1e-12:
                self.remaining_in_phase -= progress
                return
            progress -= self.remaining_in_phase
            self.phase += 1
            if not self.done:
                self.remaining_in_phase = self.spec.phase_work[self.phase]

    def time_to_phase_end(self) -> float:
        """Seconds until the current phase completes at the current rate."""
        rate = self.rate()
        if rate <= 0.0:
            return float("inf")
        return self.remaining_in_phase / rate


def lu_like_job(
    name: str,
    arrival: float,
    nb: int = 8,
    unit_work: float = 10.0,
    parallel_fraction: float = 0.97,
    max_nodes: int = 8,
) -> JobSpec:
    """A job shaped like the paper's LU run: cubic decay of phase work.

    Phase k of the blocked LU performs ~``(nb - k)^2`` of the trailing
    update plus the panel, so the work per iteration decreases steeply —
    the very property that makes dynamic deallocation attractive.
    """
    work = tuple(
        unit_work * ((nb - k) ** 2 + (nb - k)) / (nb**2 + nb) * nb
        for k in range(nb)
    )
    return JobSpec(
        name=name,
        arrival=arrival,
        phase_work=work,
        efficiency=amdahl_efficiency(parallel_fraction),
        max_nodes=max_nodes,
    )


def stencil_like_job(
    name: str,
    arrival: float,
    iterations: int = 10,
    unit_work: float = 10.0,
    parallel_fraction: float = 0.95,
    max_nodes: int = 8,
) -> JobSpec:
    """A job shaped like the stencil application: constant phase work.

    Its dynamic efficiency is flat, so shrinking it mid-run always costs
    time — the counterpoint to :func:`lu_like_job` when studying adaptive
    policies.
    """
    return JobSpec(
        name=name,
        arrival=arrival,
        phase_work=(unit_work,) * iterations,
        efficiency=amdahl_efficiency(parallel_fraction),
        max_nodes=max_nodes,
    )


def rampup_job(
    name: str,
    arrival: float,
    phases: int = 8,
    unit_work: float = 10.0,
    parallel_fraction: float = 0.96,
    max_nodes: int = 8,
) -> JobSpec:
    """A job whose work *grows* per phase (e.g. adaptive mesh refinement).

    Such jobs benefit from *gaining* nodes over time; under shrink-only
    policies they expose the cost of early over-allocation.
    """
    work = tuple(unit_work * (k + 1) for k in range(phases))
    return JobSpec(
        name=name,
        arrival=arrival,
        phase_work=work,
        efficiency=amdahl_efficiency(parallel_fraction),
        max_nodes=max_nodes,
    )


def synthetic_workload(
    jobs: int = 12,
    mean_interarrival: float = 40.0,
    seed: int = 0,
    max_nodes: int = 8,
) -> list[JobSpec]:
    """A random stream of LU-like jobs (Poisson arrivals, varied sizes)."""
    rng = SeedSequenceFactory(seed).rng("workload")
    specs = []
    t = 0.0
    for i in range(jobs):
        t += float(rng.exponential(mean_interarrival))
        nb = int(rng.integers(4, 12))
        unit = float(rng.uniform(5.0, 25.0))
        pf = float(rng.uniform(0.92, 0.99))
        specs.append(
            lu_like_job(
                f"job{i}",
                arrival=t,
                nb=nb,
                unit_work=unit,
                parallel_fraction=pf,
                max_nodes=max_nodes,
            )
        )
    return specs


def mixed_workload(
    jobs: int = 12,
    mean_interarrival: float = 40.0,
    seed: int = 0,
    max_nodes: int = 8,
) -> list[JobSpec]:
    """A random mix of LU-like, stencil-like and ramp-up jobs."""
    rng = SeedSequenceFactory(seed).rng("mixed-workload")
    specs = []
    t = 0.0
    for i in range(jobs):
        t += float(rng.exponential(mean_interarrival))
        unit = float(rng.uniform(5.0, 25.0))
        pf = float(rng.uniform(0.92, 0.99))
        shape = int(rng.integers(0, 3))
        if shape == 0:
            specs.append(
                lu_like_job(
                    f"lu{i}", t, nb=int(rng.integers(4, 12)), unit_work=unit,
                    parallel_fraction=pf, max_nodes=max_nodes,
                )
            )
        elif shape == 1:
            specs.append(
                stencil_like_job(
                    f"st{i}", t, iterations=int(rng.integers(5, 15)),
                    unit_work=unit, parallel_fraction=pf, max_nodes=max_nodes,
                )
            )
        else:
            specs.append(
                rampup_job(
                    f"rr{i}", t, phases=int(rng.integers(4, 10)),
                    unit_work=unit, parallel_fraction=pf, max_nodes=max_nodes,
                )
            )
    return specs
