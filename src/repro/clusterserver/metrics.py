"""Streaming SLO aggregates for open-system cluster-server runs.

The open-system engines (:class:`~repro.clusterserver.server.ClusterServer`
and :class:`~repro.clusterserver.sharded.ShardedServer` fed by an arrival
stream) retire completed jobs immediately instead of retaining
:class:`~repro.clusterserver.workload.MalleableJob` objects for the whole
run — that is what makes their memory O(active jobs).  Everything a
retired job contributes to the result is folded into a
:class:`SloAggregator` at retirement time:

* sojourn (turnaround), wait and slowdown moments via
  :class:`~repro.util.stats.OnlineStats`;
* sojourn p50/p99 via the mergeable
  :class:`~repro.util.stats.StreamingQuantile` reservoir;
* rejection counts from admission-control policies;
* a bounded utilization-over-time series (busy/capacity node-second
  integrals per coalescing time bucket).

All folds are plain float arithmetic in a deterministic call order, so the
sharded engine's controller-side aggregator produces **bit-identical**
:class:`SloSummary` values for every shard count — the same contract the
per-job dicts of closed runs satisfy.  :meth:`SloAggregator.merge`
additionally supports fan-in of independently built aggregators (e.g. per
shard or per sweep case), at reservoir accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.util.stats import OnlineStats, StreamingQuantile

#: Utilization buckets kept before adjacent pairs are coalesced; the
#: series never exceeds twice this length, keeping the aggregator O(1).
UTILIZATION_POINTS = 96


@dataclass(frozen=True)
class SloSummary:
    """Frozen scalar SLO outcome of one open-system run.

    A plain value object (compares bit-exactly) so the sharded
    determinism tests can assert summary equality across shard counts.
    ``utilization_series`` is a tuple of ``(bucket_end_time, utilization)``
    pairs — the utilization-over-time signal, bounded in length.
    """

    jobs_completed: int
    jobs_rejected: int
    throughput: float
    sojourn_mean: float
    sojourn_p50: float
    sojourn_p99: float
    wait_mean: float
    slowdown_mean: float
    slowdown_max: float
    rejection_rate: float
    total_work: float
    node_seconds: float
    utilization_mean: float
    utilization_series: tuple[tuple[float, float], ...] = ()
    #: fault-layer counters (see ``docs/faults.md``); zero without a plan
    retries: int = 0
    lost_work: float = 0.0
    failed_jobs: int = 0

    def to_metrics(self) -> dict[str, float]:
        """Flat scalar dict for :class:`~repro.scenario.runner.RunRecord`."""
        return {
            "jobs_completed": self.jobs_completed,
            "jobs_rejected": self.jobs_rejected,
            "throughput": self.throughput,
            "sojourn_mean": self.sojourn_mean,
            "sojourn_p50": self.sojourn_p50,
            "sojourn_p99": self.sojourn_p99,
            "wait_mean": self.wait_mean,
            "slowdown_mean": self.slowdown_mean,
            "slowdown_max": self.slowdown_max,
            "rejection_rate": self.rejection_rate,
            "utilization_mean": self.utilization_mean,
            "retries": self.retries,
            "lost_work": self.lost_work,
            "failed_jobs": self.failed_jobs,
        }


class SloAggregator:
    """Folds retired jobs, rejections and utilization into O(1) state."""

    def __init__(self, quantile_capacity: int = 512) -> None:
        self.sojourn = OnlineStats()
        self.wait = OnlineStats()
        self.slowdown = OnlineStats()
        self.sojourn_quantile = StreamingQuantile(quantile_capacity)
        self.completed = 0
        self.rejected = 0
        self.total_work = 0.0
        self.node_seconds = 0.0
        self._busy_integral = 0.0
        self._cap_integral = 0.0
        self._last_t = 0.0
        self._granted = 0
        self._capacity = 0
        self.retries = 0
        self.lost_work = 0.0
        self.failed_jobs = 0
        #: [bucket_end_time, busy node-seconds, capacity node-seconds]
        self._series: list[list[float]] = []

    # ------------------------------------------------------------- observe
    def observe_completion(self, job: Any) -> None:
        """Retire one finished :class:`MalleableJob`: fold, then forget."""
        spec = job.spec
        sojourn = job.finished_at - spec.arrival
        self.sojourn.add(sojourn)
        self.sojourn_quantile.add(sojourn)
        self.wait.add(job.started_at - spec.arrival)
        ideal = spec.ideal_duration()
        self.slowdown.add(sojourn / ideal if ideal > 0 else math.inf)
        self.completed += 1
        self.total_work += spec.total_work
        self.node_seconds += job.node_seconds

    def observe_rejection(self, now: float, spec: Any) -> None:
        """Count one job turned away by admission control."""
        self.rejected += 1

    def observe_utilization(self, now: float, granted: int, capacity: int) -> None:
        """Integrate the *previous* grant level over [last_t, now].

        Call after every allocation decision with the new totals: the old
        totals held exactly until ``now``.
        """
        dt = now - self._last_t
        if dt > 0 and self._capacity > 0:
            busy = self._granted * dt
            cap = self._capacity * dt
            self._busy_integral += busy
            self._cap_integral += cap
            self._series.append([now, busy, cap])
            if len(self._series) >= 2 * UTILIZATION_POINTS:
                self._coalesce()
        self._last_t = now
        self._granted = granted
        self._capacity = capacity

    def _coalesce(self) -> None:
        """Halve the series by summing adjacent bucket pairs."""
        merged = []
        series = self._series
        for i in range(0, len(series) - 1, 2):
            a, b = series[i], series[i + 1]
            merged.append([b[0], a[1] + b[1], a[2] + b[2]])
        if len(series) % 2:
            merged.append(series[-1])
        self._series = merged

    # --------------------------------------------------------------- fan-in
    def merge(self, other: "SloAggregator") -> "SloAggregator":
        """A new aggregator combining both sample sets (reservoir accuracy)."""
        out = SloAggregator()
        out.sojourn = self.sojourn.merge(other.sojourn)
        out.wait = self.wait.merge(other.wait)
        out.slowdown = self.slowdown.merge(other.slowdown)
        out.sojourn_quantile = self.sojourn_quantile.merge(
            other.sojourn_quantile
        )
        out.completed = self.completed + other.completed
        out.rejected = self.rejected + other.rejected
        out.total_work = self.total_work + other.total_work
        out.node_seconds = self.node_seconds + other.node_seconds
        out.retries = self.retries + other.retries
        out.lost_work = self.lost_work + other.lost_work
        out.failed_jobs = self.failed_jobs + other.failed_jobs
        out._busy_integral = self._busy_integral + other._busy_integral
        out._cap_integral = self._cap_integral + other._cap_integral
        out._last_t = max(self._last_t, other._last_t)
        out._series = sorted(
            [list(e) for e in self._series + other._series]
        )
        while len(out._series) >= 2 * UTILIZATION_POINTS:
            out._coalesce()
        return out

    # -------------------------------------------------------------- summary
    def summary(self, makespan: float) -> SloSummary:
        """Freeze the aggregates into a :class:`SloSummary`."""
        offered = self.completed + self.rejected
        return SloSummary(
            jobs_completed=self.completed,
            jobs_rejected=self.rejected,
            throughput=self.completed / makespan if makespan > 0 else 0.0,
            sojourn_mean=self.sojourn.mean,
            sojourn_p50=self.sojourn_quantile.quantile(50.0),
            sojourn_p99=self.sojourn_quantile.quantile(99.0),
            wait_mean=self.wait.mean,
            slowdown_mean=self.slowdown.mean,
            slowdown_max=self.slowdown.maximum,
            rejection_rate=self.rejected / offered if offered else 0.0,
            total_work=self.total_work,
            node_seconds=self.node_seconds,
            utilization_mean=(
                self._busy_integral / self._cap_integral
                if self._cap_integral > 0
                else 0.0
            ),
            utilization_series=tuple(
                (t, busy / cap if cap > 0 else 0.0)
                for t, busy, cap in self._series
            ),
            retries=self.retries,
            lost_work=self.lost_work,
            failed_jobs=self.failed_jobs,
        )
