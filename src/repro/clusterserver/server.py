"""The cluster server simulation itself.

Event-driven over :class:`~repro.des.kernel.Kernel`: jobs arrive, the
scheduler reallocates on every arrival and phase/job completion, and jobs
progress as fluid work at ``nodes x efficiency(nodes)``.  Reallocation at
*phase* boundaries matters: an LU-like job's efficiency collapses in its
tail phases, so an adaptive policy shrinks it mid-run — the cluster-level
generalization of the paper's "kill 4 after iteration 1" experiment.

Two workload shapes, one entry point: :meth:`ClusterServer.run` takes
either a **closed** workload (a materialized ``Sequence[JobSpec]``, the
paper's §9 shape — per-job result dicts, state O(total jobs)) or an
**open** one (any other iterable of ``(arrival_time, JobSpec)`` pairs,
see :mod:`repro.clusterserver.arrivals`).  Open runs pull arrivals on
demand, consult the policy's admission hook, and retire completed jobs
into a streaming :class:`~repro.clusterserver.metrics.SloAggregator`, so
memory stays O(active jobs) no matter how long the stream is.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.clusterserver.metrics import SloAggregator, SloSummary
from repro.clusterserver.scheduler import Scheduler
from repro.clusterserver.workload import JobSpec, MalleableJob
from repro.des.kernel import Kernel
from repro.errors import ConfigurationError
from repro.faults import CompiledFaultPlan, FaultPlan, FaultRuntime


def _compile_faults(faults, total_nodes: int):
    """Normalize a ctor ``faults`` argument to a compiled plan or ``None``.

    An eventless plan normalizes to ``None`` so it selects the exact
    fault-free code path (part of the ≤2% empty-plan overhead gate:
    there is literally nothing to pay).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultPlan):
        faults = faults.compile(total_nodes)
    if not isinstance(faults, CompiledFaultPlan):
        raise ConfigurationError(
            "faults must be a FaultPlan or CompiledFaultPlan, "
            f"got {type(faults).__name__}"
        )
    return faults if faults.entries else None


@dataclass
class ServerResult:
    """Outcome of one workload under one scheduling policy."""

    scheduler: str
    total_nodes: int
    makespan: float
    job_turnaround: dict[str, float]
    job_node_seconds: dict[str, float]
    total_work: float
    #: seconds each job waited from arrival to its first node grant
    job_wait: dict[str, float] = field(default_factory=dict)
    #: turnaround over dedicated-cluster run time at the requested size
    job_slowdown: dict[str, float] = field(default_factory=dict)
    #: kernel events executed to produce this result (summed over shard
    #: kernels for a sharded run — the cost metric the sharding property
    #: tests conserve)
    events: int = 0
    #: streaming SLO aggregates of an open-system run (None for closed
    #: runs, whose per-job dicts carry the full information)
    slo: Optional[SloSummary] = None
    #: jobs that ran to completion (== len(job_turnaround) when closed)
    jobs_completed: int = 0
    #: jobs turned away by admission control (open-system runs only)
    jobs_rejected: int = 0
    #: fault-layer outcome (``docs/faults.md``); zeros without a plan
    retries: int = 0
    lost_work: float = 0.0
    failed_jobs: int = 0
    #: applied fault operations in replay order (bit-identical across
    #: shard counts — part of the sharded determinism contract)
    fault_trace: tuple = ()

    def _consumed_node_seconds(self) -> float:
        if self.job_node_seconds:
            return sum(self.job_node_seconds.values())
        return self.slo.node_seconds if self.slo is not None else 0.0

    @property
    def mean_turnaround(self) -> float:
        if self.job_turnaround:
            return sum(self.job_turnaround.values()) / len(self.job_turnaround)
        if self.slo is not None:
            return self.slo.sojourn_mean
        return float("nan")

    @property
    def mean_wait(self) -> float:
        """Average queueing delay before the first allocation."""
        if self.job_wait:
            return sum(self.job_wait.values()) / len(self.job_wait)
        if self.slo is not None:
            return self.slo.wait_mean
        return float("nan")

    @property
    def mean_slowdown(self) -> float:
        """Average turnaround stretch relative to a dedicated cluster."""
        if self.job_slowdown:
            return sum(self.job_slowdown.values()) / len(self.job_slowdown)
        if self.slo is not None:
            return self.slo.slowdown_mean
        return float("nan")

    @property
    def max_slowdown(self) -> float:
        """Worst-case stretch — head-of-line blocking shows up here."""
        if self.job_slowdown:
            return max(self.job_slowdown.values())
        if self.slo is not None:
            return self.slo.slowdown_max
        return float("nan")

    @property
    def cluster_efficiency(self) -> float:
        """Useful work over consumed node-seconds (the paper's concern)."""
        consumed = self._consumed_node_seconds()
        return self.total_work / consumed if consumed > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Consumed node-seconds over offered capacity (nodes x makespan)."""
        capacity = self.total_nodes * self.makespan
        if capacity <= 0:
            return 0.0
        return self._consumed_node_seconds() / capacity

    @property
    def service_rate(self) -> float:
        """Useful work completed per allocated-node-second of *capacity*.

        The quantity section 8 argues dynamic deallocation improves: work
        delivered per node-second the cluster offered.
        """
        capacity = self.total_nodes * self.makespan
        return self.total_work / capacity if capacity > 0 else 0.0

    @property
    def throughput(self) -> float:
        """Jobs completed per unit time."""
        if self.makespan <= 0:
            return 0.0
        count = len(self.job_turnaround) or self.jobs_completed
        return count / self.makespan


def finalize_result(
    scheduler_name: str,
    total_nodes: int,
    jobs: Sequence[MalleableJob],
    makespan: float,
    events: int,
    faults=None,
) -> ServerResult:
    """Starvation check plus metric assembly, shared by both engines.

    :class:`ClusterServer` and
    :class:`~repro.clusterserver.sharded.ShardedServer` must compute
    turnaround/wait/slowdown identically — the sharded-equivalence gate
    compares them field by field — so the tail lives here exactly once.
    ``jobs`` must carry final ``started_at``/``finished_at``/
    ``node_seconds`` state, in workload-spec order.  ``faults`` is the
    run's :class:`~repro.faults.FaultRuntime` (if any): jobs it failed
    are excluded from the per-job dicts — their discarded work shows up
    in ``lost_work``, not ``total_work``.
    """
    unfinished = [j for j in jobs if not j.done and not j.failed]
    if unfinished:
        raise ConfigurationError(
            f"{scheduler_name}: {len(unfinished)} jobs never "
            "completed (policy starved them); check min_nodes and "
            "cluster size"
        )
    completed = [j for j in jobs if not j.failed]
    slowdown = {}
    for j in completed:
        ideal = j.spec.ideal_duration()
        turnaround = j.finished_at - j.spec.arrival
        slowdown[j.spec.name] = turnaround / ideal if ideal > 0 else math.inf
    return ServerResult(
        scheduler=scheduler_name,
        total_nodes=total_nodes,
        makespan=makespan,
        job_turnaround={
            j.spec.name: j.finished_at - j.spec.arrival for j in completed
        },
        job_node_seconds={j.spec.name: j.node_seconds for j in completed},
        total_work=sum(j.spec.total_work for j in completed),
        job_wait={
            j.spec.name: j.started_at - j.spec.arrival for j in completed
        },
        job_slowdown=slowdown,
        events=events,
        jobs_completed=len(completed),
        retries=faults.retries if faults is not None else 0,
        lost_work=faults.lost_work if faults is not None else 0.0,
        failed_jobs=faults.failed_jobs if faults is not None else 0,
        fault_trace=tuple(faults.trace) if faults is not None else (),
    )


class ClusterServer:
    """Simulates a cluster running a malleable workload under a policy.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan` (or an
    already-compiled plan): node crashes, brown-outs, degrades and job
    kills replayed deterministically against the run (see
    ``docs/faults.md``).  A plan with no events adds no code to the hot
    path — fault-free runs are bit-identical to ``faults=None``.
    """

    def __init__(
        self, total_nodes: int, scheduler: Scheduler, faults=None
    ) -> None:
        if total_nodes < 1:
            raise ConfigurationError("total_nodes must be >= 1")
        self.total_nodes = total_nodes
        self.scheduler = scheduler
        self.faults = _compile_faults(faults, total_nodes)

    def run(self, workload) -> ServerResult:
        """Simulate a workload to completion.

        A ``Sequence[JobSpec]`` runs the closed-system path (per-job
        result dicts, bit-identical to previous releases); any other
        iterable is treated as an open arrival stream of
        ``(arrival_time, JobSpec)`` pairs and runs the O(active-jobs)
        streaming path with SLO aggregates in ``result.slo``.
        """
        if isinstance(workload, SequenceABC):
            return self._run_closed(workload)
        return self._run_open(iter(workload))

    def _run_closed(self, specs: Sequence[JobSpec]) -> ServerResult:
        """The closed-system path: every job materialized up front."""
        kernel = Kernel()
        jobs = [MalleableJob(spec, index=i) for i, spec in enumerate(specs)]
        pending = sorted(jobs, key=lambda j: j.spec.arrival)
        running: list[MalleableJob] = []
        runtime = (
            FaultRuntime(self.faults, self.total_nodes)
            if self.faults is not None
            else None
        )
        last_update = 0.0
        boundary: list = [None]  # pending phase-boundary event handle
        arrivals_left = len(pending)
        fault_handles: dict[float, object] = {}

        def advance_to_now() -> None:
            nonlocal last_update
            dt = kernel.now - last_update
            if dt > 0:
                for job in running:
                    job.advance(dt)
            last_update = kernel.now

        def apply_faults() -> None:
            # Fire every fault due now against the pre-fault grants of
            # the jobs that have not already completed at this instant —
            # the same retirement-first ordering the sharded engine's
            # barrier uses.
            live = {j.index: j for j in running if not j.done}
            ordered = sorted((idx, j.nodes) for idx, j in live.items())
            _fired, victims = runtime.fire(kernel.now, ordered)
            for idx, entry in victims:
                job = live.get(idx)
                if job is None:
                    entry["outcome"] = "absent"
                    continue
                lost = job.spec.phase_work[job.phase] - job.remaining_in_phase
                if runtime.record_loss(idx, lost, entry) == "retry":
                    # Restart the whole current phase: the post-fault
                    # remaining is an exact constant, which is what lets
                    # every engine agree bit-for-bit after the fault.
                    job.remaining_in_phase = job.spec.phase_work[job.phase]
                else:
                    job.failed = True
                    job.finished_at = kernel.now
                    job.nodes = 0
                    running.remove(job)
                    del live[idx]

        def reschedule() -> None:
            # Retire finished jobs, apply the policy, arm the next event.
            # The previously armed boundary event is superseded by this
            # decision (rates may have changed); cancelling it keeps the
            # queue free of stale wake-ups that would otherwise fire as
            # no-op decisions — and, after the last completion, drag the
            # makespan past the true end of the workload.
            if boundary[0] is not None:
                kernel.cancel(boundary[0])
                boundary[0] = None
            finished = [j for j in running if j.done]
            for job in finished:
                job.finished_at = kernel.now
                job.nodes = 0
                running.remove(job)
            capacity = self.total_nodes
            if runtime is not None:
                if not running and arrivals_left == 0:
                    # Workload done: faults scheduled past the end must
                    # not drag the makespan out.
                    for handle in fault_handles.values():
                        kernel.cancel(handle)
                    fault_handles.clear()
                capacity = runtime.capacity(self.total_nodes)
            allocation = self.scheduler.allocate(running, capacity)
            granted = sum(allocation.values())
            if granted > capacity:
                raise ConfigurationError(
                    f"{self.scheduler.name} over-allocated: {granted} > "
                    f"{capacity}"
                )
            for job in running:
                job.nodes = allocation.get(job, 0)
                if job.nodes > 0 and math.isnan(job.started_at):
                    job.started_at = kernel.now
            if runtime is not None and runtime.factors_live:
                factors = runtime.rate_factors(
                    sorted((j.index, j.nodes) for j in running)
                )
                for job in running:
                    job.rate_factor = factors[job.index]
            horizon = min(
                (j.time_to_phase_end() for j in running), default=math.inf
            )
            if math.isfinite(horizon):
                boundary[0] = kernel.schedule(
                    max(horizon, 1e-12), on_phase_boundary
                )

        def on_phase_boundary() -> None:
            boundary[0] = None
            advance_to_now()
            reschedule()

        def on_arrival(job: MalleableJob) -> None:
            nonlocal arrivals_left
            arrivals_left -= 1
            advance_to_now()
            running.append(job)
            reschedule()

        def on_fault(t: float) -> None:
            fault_handles.pop(t, None)
            advance_to_now()
            apply_faults()
            reschedule()

        if runtime is not None:
            # Scheduled before the arrivals so their lower sequence
            # numbers win timestamp ties: at equal times the order is
            # completions (advance + retire), then faults, then arrivals
            # — the sharded barrier's ordering.
            for t in sorted({e[0] for e in self.faults.entries}):
                fault_handles[t] = kernel.schedule_at(t, on_fault, t)
        for job in pending:
            kernel.schedule_at(job.spec.arrival, on_arrival, job)
        kernel.run()
        advance_to_now()
        return finalize_result(
            self.scheduler.name,
            self.total_nodes,
            jobs,
            kernel.now,
            kernel.events_executed,
            faults=runtime,
        )

    def _run_open(
        self, stream: Iterator[tuple[float, JobSpec]]
    ) -> ServerResult:
        """The open-system path: pull arrivals lazily, retire eagerly.

        Only *active* jobs (admitted, unfinished) hold
        :class:`MalleableJob` state; completions fold into a
        :class:`~repro.clusterserver.metrics.SloAggregator` and are
        forgotten, so memory is O(active jobs) regardless of how many
        jobs the stream produces.
        """
        kernel = Kernel()
        agg = SloAggregator()
        running: list[MalleableJob] = []
        deferred: deque[tuple[int, JobSpec]] = deque()
        runtime = (
            FaultRuntime(self.faults, self.total_nodes)
            if self.faults is not None
            else None
        )
        last_update = 0.0
        last_arrival = 0.0
        next_index = 0
        exhausted = False
        boundary: list = [None]
        fault_handles: dict[float, object] = {}

        def advance_to_now() -> None:
            nonlocal last_update
            dt = kernel.now - last_update
            if dt > 0:
                for job in running:
                    job.advance(dt)
            last_update = kernel.now

        def schedule_next_arrival() -> None:
            nonlocal last_arrival, exhausted
            item = next(stream, None)
            if item is None:
                exhausted = True
                return
            t, spec = item
            if t < last_arrival:
                raise ConfigurationError(
                    "arrival process yielded decreasing times "
                    f"({t} after {last_arrival}); streams must be "
                    "nondecreasing"
                )
            last_arrival = t
            kernel.schedule_at(t, on_arrival, spec)

        def available_nodes() -> int:
            if runtime is not None:
                return runtime.capacity(self.total_nodes)
            return self.total_nodes

        def apply_faults() -> None:
            # Identical victim semantics to the closed path: restart the
            # current phase under the retry budget, fail past it.
            live = {j.index: j for j in running if not j.done}
            ordered = sorted((idx, j.nodes) for idx, j in live.items())
            _fired, victims = runtime.fire(kernel.now, ordered)
            for idx, entry in victims:
                job = live.get(idx)
                if job is None:
                    entry["outcome"] = "absent"
                    continue
                lost = job.spec.phase_work[job.phase] - job.remaining_in_phase
                if runtime.record_loss(idx, lost, entry) == "retry":
                    job.remaining_in_phase = job.spec.phase_work[job.phase]
                else:
                    job.failed = True
                    job.finished_at = kernel.now
                    job.nodes = 0
                    running.remove(job)
                    del live[idx]

        def reschedule() -> None:
            # Same decision structure as the closed path, with retirement
            # into the aggregator and the policy's admission hooks.
            if boundary[0] is not None:
                kernel.cancel(boundary[0])
                boundary[0] = None
            finished = [j for j in running if j.done]
            for job in finished:
                job.finished_at = kernel.now
                job.nodes = 0
                running.remove(job)
                agg.observe_completion(job)
            avail = available_nodes()
            if (
                runtime is not None
                and exhausted
                and not running
                and not deferred
            ):
                for handle in fault_handles.values():
                    kernel.cancel(handle)
                fault_handles.clear()
            # Deferred arrivals retry in FIFO order; membership state may
            # have changed since they were parked.
            while deferred and self.scheduler.admit(
                deferred[0][1], running, avail
            ):
                idx, spec = deferred.popleft()
                running.append(MalleableJob(spec, index=idx))
            allocation = self.scheduler.allocate(running, avail)
            granted = sum(allocation.values())
            # Read the capacity after allocate(): autoscalers resize
            # their pool inside the allocation call.
            capacity = self.scheduler.capacity(avail)
            if granted > capacity:
                raise ConfigurationError(
                    f"{self.scheduler.name} over-allocated: {granted} > "
                    f"{capacity}"
                )
            for job in running:
                job.nodes = allocation.get(job, 0)
                if job.nodes > 0 and math.isnan(job.started_at):
                    job.started_at = kernel.now
            if runtime is not None and runtime.factors_live:
                factors = runtime.rate_factors(
                    sorted((j.index, j.nodes) for j in running)
                )
                for job in running:
                    job.rate_factor = factors[job.index]
            agg.observe_utilization(kernel.now, granted, capacity)
            horizon = min(
                (j.time_to_phase_end() for j in running), default=math.inf
            )
            if math.isfinite(horizon):
                boundary[0] = kernel.schedule(
                    max(horizon, 1e-12), on_phase_boundary
                )

        def on_phase_boundary() -> None:
            boundary[0] = None
            advance_to_now()
            reschedule()

        def on_arrival(spec: JobSpec) -> None:
            nonlocal next_index
            advance_to_now()
            # One-ahead pull: exactly one future arrival is ever buffered.
            schedule_next_arrival()
            idx = next_index
            next_index += 1
            if self.scheduler.admit(spec, running, available_nodes()):
                running.append(MalleableJob(spec, index=idx))
            elif self.scheduler.defer_rejected:
                deferred.append((idx, spec))
            else:
                agg.observe_rejection(kernel.now, spec)
            reschedule()

        def on_fault(t: float) -> None:
            fault_handles.pop(t, None)
            advance_to_now()
            apply_faults()
            reschedule()

        if runtime is not None:
            # Before the first arrival pull, so fault events win
            # timestamp ties against arrivals (completions still settle
            # first via the done-exclusion in apply_faults) — the same
            # ordering the sharded barrier applies.
            for t in sorted({e[0] for e in self.faults.entries}):
                fault_handles[t] = kernel.schedule_at(t, on_fault, t)
        schedule_next_arrival()
        kernel.run()
        advance_to_now()
        if running or deferred:
            starved = len(running) + len(deferred)
            raise ConfigurationError(
                f"{self.scheduler.name}: {starved} jobs never "
                "completed (policy starved them); check min_nodes and "
                "cluster size"
            )
        if runtime is not None:
            agg.retries = runtime.retries
            agg.lost_work = runtime.lost_work
            agg.failed_jobs = runtime.failed_jobs
        summary = agg.summary(kernel.now)
        return ServerResult(
            scheduler=self.scheduler.name,
            total_nodes=self.total_nodes,
            makespan=kernel.now,
            job_turnaround={},
            job_node_seconds={},
            total_work=summary.total_work,
            events=kernel.events_executed,
            slo=summary,
            jobs_completed=summary.jobs_completed,
            jobs_rejected=summary.jobs_rejected,
            retries=summary.retries,
            lost_work=summary.lost_work,
            failed_jobs=summary.failed_jobs,
            fault_trace=tuple(runtime.trace) if runtime is not None else (),
        )
