"""Sharded single-scenario cluster-server simulation.

:class:`~repro.clusterserver.server.ClusterServer` runs one scenario on a
single event loop and pays O(running jobs) at *every* decision point: each
arrival or phase boundary eagerly advances every running job.  For one
huge scenario (thousands of malleable jobs) that per-event scan dominates
the wall clock — and it is exactly the work that partitions.

:class:`ShardedServer` splits the jobs across K shard-local
:class:`~repro.des.kernel.Kernel` + :class:`~repro.des.fluid.FluidPool`
instances and advances them with the conservative epoch controller of
:mod:`repro.des.epoch`:

* each running job's *current phase* is one fluid task in its shard's
  pool, so progress integrates lazily and each shard's next phase
  completion comes from the pool's horizon heap in O(log n) — not from a
  scan;
* between global decision points (job arrivals, phase/job completions)
  every rate is piecewise-constant, so each shard's pending event times
  are a valid conservative lookahead bound: every shard can safely
  ``run(until=epoch_end)`` without observing the other shards;
* at each epoch barrier the controller replays the scheduler's *global*
  reallocation over phase-granular job mirrors and pushes only the
  changed node grants back to the shards.  Barriers whose
  scheduler-visible state provably did not change (pure within-job phase
  boundaries under a :attr:`~repro.clusterserver.scheduler.Scheduler.\
progress_insensitive` policy) skip the allocation call entirely.

Determinism contract (see ``docs/sharding.md``): the
:class:`~repro.clusterserver.server.ServerResult` is **bit-identical for
every shard count and execution mode** — all timing arithmetic is either
per-job (identical regardless of which shard holds the job) or performed
by the controller (identical regardless of K).  ``shards=1`` is therefore
*the* single-kernel run that the sharded-equivalence property tests and
the ``benchmarks/bench_clusterserver.py`` gate compare against.

Execution modes: ``"process"`` runs each shard in a worker process
(barriers exchange only node-grant deltas and completion reports over
pipes), ``"inprocess"`` advances the shard kernels round-robin on the
calling thread (no parallelism, useful for K small, determinism tests and
single-CPU hosts); ``"auto"`` picks processes when the host has more than
one CPU.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from collections import deque
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass
from typing import Collection, Iterator, Optional, Sequence

from repro.clusterserver.metrics import SloAggregator
from repro.clusterserver.scheduler import Scheduler
from repro.clusterserver.server import (
    ServerResult,
    _compile_faults,
    finalize_result,
)
from repro.clusterserver.workload import JobSpec, MalleableJob
from repro.des.epoch import EpochController, ShardHandle
from repro.des.fluid import FluidPool, FluidTask, RateAllocator
from repro.des.kernel import Kernel
from repro.errors import ConfigurationError, ShardCrashError, SimulationError
from repro.faults import FaultRuntime


@dataclass
class ShardStats:
    """Work accounting of one :meth:`ShardedServer.run` (bench-gate feed)."""

    #: number of shards the scenario was partitioned into
    shards: int
    #: execution mode actually used ("inprocess" or "process")
    mode: str
    #: epoch barriers executed
    epochs: int = 0
    #: wall seconds blocked at barriers after kicking off every shard
    barrier_wait_s: float = 0.0
    #: barriers that ran the scheduler's global reallocation
    allocations: int = 0
    #: barriers provably allocation-neutral (skipped scheduler calls)
    allocations_elided: int = 0
    #: kernel events executed per shard
    shard_events: tuple[int, ...] = ()
    #: jobs assigned per shard
    shard_jobs: tuple[int, ...] = ()
    #: wall seconds of the whole run
    wall_s: float = 0.0

    @property
    def events_total(self) -> int:
        """Kernel events summed over shards (conserved across K)."""
        return sum(self.shard_events)

    def speedup_vs(self, serial_wall_s: float) -> float:
        """Wall-clock speedup against a serial run of the same scenario."""
        if self.wall_s <= 0.0:
            return math.inf
        return serial_wall_s / self.wall_s


class _ShardJob:
    """Shard-local runtime state of one job (progress lives in the pool)."""

    __slots__ = ("index", "spec", "phase", "nodes", "rate", "task")

    def __init__(self, index: int, spec: JobSpec) -> None:
        self.index = index
        self.spec = spec
        self.phase = 0
        self.nodes = 0
        self.rate = 0.0
        self.task: Optional[FluidTask] = None


class _ExternalRateAllocator(RateAllocator):
    """Pool allocator applying controller-decided rates (no law of its own).

    Rates change only at epoch barriers, through
    :meth:`JobShard.apply_allocation` → ``pool.reallocate(hint=changed)``;
    membership changes (phase-task admissions/retirements) just carry each
    job's current rate over.  Everything is O(dirty), keeping the shard's
    hot loop sub-linear.
    """

    def _full(self, tasks: Collection[FluidTask]) -> None:
        for task in tasks:
            task.rate = task.tag.rate

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        for task in added:
            task.rate = task.tag.rate
        self.stats.rates_computed += len(added)

    def _refresh(self, tasks: Collection[FluidTask], hint=None) -> None:
        targets = tasks if hint is None else hint
        for task in targets:
            task.rate = task.tag.rate
        self.stats.rates_computed += len(targets)


class JobShard:
    """One partition of the scenario: a kernel, a pool, and its jobs.

    All timing arithmetic here is strictly per-job (admission at the
    barrier clock, completion horizons from ``synced_at + remaining/rate``)
    so a job's trajectory is bit-identical no matter which shard owns it —
    the foundation of the determinism contract.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.kernel = Kernel()
        self.pool = FluidPool(
            self.kernel, _ExternalRateAllocator(), name=f"shard-{shard_id}"
        )
        #: active jobs only — completed jobs are pruned immediately, so
        #: the dict is O(active) even for million-job open streams
        self.jobs: dict[int, _ShardJob] = {}
        #: every job this shard ever hosted (stats; O(1) state)
        self.jobs_seen = 0
        self._arrived: list[int] = []
        self._completed: list[tuple[int, bool]] = []

    # ------------------------------------------------------------------ setup
    def schedule_arrival(self, index: int, spec: JobSpec) -> None:
        """Register a job and arm its arrival event (closed workloads)."""
        self.jobs[index] = _ShardJob(index, spec)
        self.jobs_seen += 1
        self.kernel.schedule_at(spec.arrival, self._on_arrival, index)

    # ----------------------------------------------------------------- events
    def _on_arrival(self, index: int) -> None:
        self._arrived.append(index)

    def _on_phase_complete(self, task: FluidTask) -> None:
        job: _ShardJob = task.tag
        job.phase += 1
        if job.phase < len(job.spec.phase_work):
            job.task = FluidTask(
                job.spec.phase_work[job.phase], self._on_phase_complete, tag=job
            )
            self.pool.add(job.task)
            self._completed.append((job.index, False))
        else:
            job.task = None
            self._completed.append((job.index, True))
            # Retire immediately: the controller never addresses a
            # completed job again, so dropping it here bounds shard
            # memory to active jobs.
            del self.jobs[job.index]

    # ---------------------------------------------------------------- epoch api
    def next_event_time(self) -> Optional[float]:
        """Earliest pending event (arrival or pool horizon), or None."""
        return self.kernel.next_event_time()

    def run_until(self, bound: float) -> tuple[list[int], list[tuple[int, bool]]]:
        """Advance to the epoch bound; report arrivals and completions."""
        self.kernel.run(until=bound)
        arrived, self._arrived = self._arrived, []
        completed, self._completed = self._completed, []
        return arrived, completed

    def admit(self, index: int) -> None:
        """Admit an arrived job's first phase into the pool (rate 0)."""
        job = self.jobs[index]
        job.task = FluidTask(
            job.spec.phase_work[0], self._on_phase_complete, tag=job
        )
        self.pool.add(job.task)

    def admit_spec(self, index: int, spec: JobSpec) -> None:
        """Register and admit a streamed job at the barrier clock.

        Open-system path: the controller pulled ``spec`` from the arrival
        stream, so the shard never saw an arrival event — the job starts
        existing here, at ``kernel.now`` (== the barrier bound), exactly
        when the eager engine would admit it.
        """
        self.jobs[index] = job = _ShardJob(index, spec)
        self.jobs_seen += 1
        job.task = FluidTask(
            spec.phase_work[0], self._on_phase_complete, tag=job
        )
        self.pool.add(job.task)

    def restart_phase(self, index: int) -> None:
        """Discard the job's in-flight phase and start it over (fault retry).

        The replacement task carries the job's current rate; a grant or
        factor change decided at the same barrier follows in the same
        apply batch via :meth:`apply_allocation`.
        """
        job = self.jobs[index]
        if job.task is not None and job.task.pool is not None:
            self.pool.remove(job.task)
        job.task = FluidTask(
            job.spec.phase_work[job.phase], self._on_phase_complete, tag=job
        )
        self.pool.add(job.task)

    def drop(self, index: int) -> None:
        """Remove a job the fault layer failed (retry budget exhausted)."""
        job = self.jobs.pop(index)
        if job.task is not None and job.task.pool is not None:
            self.pool.remove(job.task)
        job.task = None

    def apply_allocation(
        self, updates: Sequence[tuple[int, int, float]]
    ) -> None:
        """Apply the controller's node-grant deltas and re-rate the tasks.

        ``factor`` is the fault layer's degraded-node slowdown — 1.0
        unless a degrade fault is live, and ``x * 1.0`` is exact under
        IEEE arithmetic, so fault-free runs are bit-unchanged.
        """
        changed: list[FluidTask] = []
        for index, nodes, factor in updates:
            job = self.jobs[index]
            job.nodes = nodes
            # Same expression as MalleableJob.rate(), so the sharded and
            # eager engines agree to float reassociation noise.
            job.rate = (
                nodes * job.spec.efficiency(nodes) * factor
                if nodes > 0
                else 0.0
            )
            if job.task is not None and job.task.pool is not None:
                changed.append(job.task)
        if changed:
            self.pool.reallocate(hint=changed)


# --------------------------------------------------------------------------
# shard handles: in-process and worker-process transports
# --------------------------------------------------------------------------


class _LocalShardHandle(ShardHandle):
    """Direct calls into a shard living on the calling thread."""

    def __init__(self, shard: JobShard) -> None:
        self.shard = shard
        self._report: Optional[tuple] = None

    def next_event_time(self) -> Optional[float]:
        return self.shard.next_event_time()

    def begin_advance(self, until: float) -> None:
        self._report = self.shard.run_until(until)

    def finish_advance(self):
        report, self._report = self._report, None
        return report

    def begin_apply(
        self,
        admissions: Sequence[int],
        updates: Sequence[tuple[int, int, float]],
        new_specs: Sequence[tuple[int, JobSpec]] = (),
        restarts: Sequence[int] = (),
        drops: Sequence[int] = (),
    ) -> None:
        for index in restarts:
            self.shard.restart_phase(index)
        for index in drops:
            self.shard.drop(index)
        for index in admissions:
            self.shard.admit(index)
        for index, spec in new_specs:
            self.shard.admit_spec(index, spec)
        self.shard.apply_allocation(updates)

    def finish_apply(self) -> None:
        return None

    def shutdown(self) -> tuple[int, int]:
        return (self.shard.kernel.events_executed, self.shard.jobs_seen)


def _shard_worker(conn, shard_id: int, assignments) -> None:
    """Worker-process loop: one shard driven by pipe commands."""
    try:
        shard = JobShard(shard_id)
        for index, spec in assignments:
            shard.schedule_arrival(index, spec)
        conn.send(("ok", shard.next_event_time()))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "run":
                arrived, completed = shard.run_until(msg[1])
                conn.send(("ok", (arrived, completed, shard.next_event_time())))
            elif cmd == "apply":
                for index in msg[4]:
                    shard.restart_phase(index)
                for index in msg[5]:
                    shard.drop(index)
                for index in msg[1]:
                    shard.admit(index)
                for index, spec in msg[3]:
                    shard.admit_spec(index, spec)
                shard.apply_allocation(msg[2])
                conn.send(("ok", shard.next_event_time()))
            elif cmd == "finish":
                conn.send(
                    ("ok", (shard.kernel.events_executed, shard.jobs_seen))
                )
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown command {cmd!r}"))
                return
    except BaseException as exc:  # pragma: no cover - crash reporting
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        raise


class _ProcessShardHandle(ShardHandle):
    """Pipe proxy to a shard in a worker process.

    ``next_event_time`` is cached from the last reply — every message that
    can change it (advance, apply) returns the fresh value, so the cache
    is always current when the controller computes the next bound.

    Crash safety: :meth:`_recv` polls the pipe in short slices and checks
    worker liveness between them, so a SIGKILLed (or OOM-killed) worker
    surfaces as a diagnostic :class:`~repro.errors.ShardCrashError` —
    shard id, in-flight command, exit code — within roughly one poll
    slice instead of blocking the controller forever.
    """

    #: pipe poll granularity; ``poll`` returns immediately once data is
    #: ready, so this bounds crash-detection latency, not reply latency
    _POLL_SLICE_S = 0.05
    #: how long shutdown waits for the final stats reply
    _FINISH_TIMEOUT_S = 60.0

    def __init__(self, ctx, shard_id: int, assignments) -> None:
        self.shard_id = shard_id
        self._last_cmd = "start"
        self._conn, child = multiprocessing.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker,
            args=(child, shard_id, assignments),
            daemon=True,
        )
        self._proc.start()
        child.close()
        self._next: Optional[float] = self._recv()
        self._jobs = len(assignments)

    def _crashed(self) -> ShardCrashError:
        self._proc.join(timeout=5.0)
        return ShardCrashError(
            self.shard_id, self._last_cmd, self._proc.exitcode
        )

    def _recv(self, timeout: Optional[float] = None):
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while not self._conn.poll(self._POLL_SLICE_S):
            if not self._proc.is_alive():
                if self._conn.poll(0):
                    break  # parting words made it out before death
                raise self._crashed()
            if deadline is not None and time.monotonic() >= deadline:
                raise ShardCrashError(self.shard_id, self._last_cmd, None)
        try:
            tag, payload = self._conn.recv()
        except (EOFError, OSError):
            raise self._crashed() from None
        if tag != "ok":
            raise SimulationError(
                f"shard {self.shard_id} worker failed: {payload}"
            )
        return payload

    def _send(self, msg: tuple) -> None:
        self._last_cmd = msg[0]
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError):
            raise self._crashed() from None

    def next_event_time(self) -> Optional[float]:
        return self._next

    def begin_advance(self, until: float) -> None:
        self._send(("run", until))

    def finish_advance(self):
        arrived, completed, self._next = self._recv()
        return (arrived, completed)

    def begin_apply(
        self,
        admissions: Sequence[int],
        updates: Sequence[tuple[int, int, float]],
        new_specs: Sequence[tuple[int, JobSpec]] = (),
        restarts: Sequence[int] = (),
        drops: Sequence[int] = (),
    ) -> None:
        self._send(
            (
                "apply",
                list(admissions),
                list(updates),
                list(new_specs),
                list(restarts),
                list(drops),
            )
        )

    def finish_apply(self) -> None:
        self._next = self._recv()

    def shutdown(self) -> tuple[int, int]:
        """Stop the worker and return its stats; crashes are errors.

        A worker that died, stalled, or exited nonzero raises
        :class:`~repro.errors.ShardCrashError` instead of being silently
        terminated — losing a shard mid-teardown means the result may be
        incomplete, and the caller must know.
        """
        try:
            self._send(("finish",))
            stats = self._recv(timeout=self._FINISH_TIMEOUT_S)
            self._proc.join(timeout=10.0)
            if self._proc.is_alive():
                raise ShardCrashError(self.shard_id, "finish", None)
            exitcode = self._proc.exitcode
            if exitcode not in (0, None):
                raise ShardCrashError(self.shard_id, "finish", exitcode)
            return stats
        finally:
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=10.0)
            self._conn.close()


# --------------------------------------------------------------------------
# the sharded server
# --------------------------------------------------------------------------


class ShardedServer:
    """Cluster-server simulation partitioned over K shard kernels.

    Drop-in companion to :class:`~repro.clusterserver.server.ClusterServer`
    — same constructor shape plus ``shards``/``mode``, same
    :class:`~repro.clusterserver.server.ServerResult` — with the
    determinism contract that the result is bit-identical for every
    ``shards`` value and mode.  ``shards=1`` is the single-kernel run.

    Requires a :attr:`~repro.clusterserver.scheduler.Scheduler.\
progress_insensitive` policy: the scheduler sees *phase-granular* job
    mirrors at barriers (within-phase progress stays shard-local), and
    allocation-neutral barriers elide the scheduler call.
    """

    def __init__(
        self,
        total_nodes: int,
        scheduler: Scheduler,
        shards: int = 1,
        mode: str = "auto",
        faults=None,
    ) -> None:
        if total_nodes < 1:
            raise ConfigurationError("total_nodes must be >= 1")
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if mode not in ("auto", "inprocess", "process"):
            raise ConfigurationError(
                f"unknown shard mode {mode!r}; choose auto, inprocess or process"
            )
        self.total_nodes = total_nodes
        self.scheduler = scheduler
        self.shards = shards
        self.mode = mode
        #: compiled fault plan (``docs/faults.md``); fault replay happens
        #: controller-side at barriers, so the trace and every counter
        #: are bit-identical for every K — the runtime never crosses a
        #: shard boundary
        self.faults = _compile_faults(faults, total_nodes)
        #: accounting of the last run (None before the first)
        self.stats: Optional[ShardStats] = None

    def _resolve_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        if self.shards > 1 and (os.cpu_count() or 1) > 1:
            return "process"
        return "inprocess"

    def run(self, workload) -> ServerResult:
        """Simulate a workload to completion (deterministic in K/mode).

        A ``Sequence[JobSpec]`` runs the closed-system path; any other
        iterable is an open arrival stream of ``(arrival_time, JobSpec)``
        pairs (:mod:`repro.clusterserver.arrivals`), pulled lazily by the
        epoch controller with memory bounded by active jobs.  Both paths
        honour the bit-identical-for-every-K contract.
        """
        if not getattr(self.scheduler, "progress_insensitive", False):
            raise ConfigurationError(
                f"{self.scheduler.name}: sharded simulation requires a "
                "progress-insensitive scheduler (allocate() must not read "
                "job progress — phase index or remaining work); run it on "
                "ClusterServer instead"
            )
        if isinstance(workload, SequenceABC):
            return self._run_closed(workload)
        return self._run_open(iter(workload))

    def _run_closed(self, specs: Sequence[JobSpec]) -> ServerResult:
        """The closed-system path: jobs pre-partitioned across shards."""
        t_start = time.perf_counter()
        mode = self._resolve_mode()
        K = self.shards
        mirrors = [
            MalleableJob(spec, index=i) for i, spec in enumerate(specs)
        ]
        runtime = (
            FaultRuntime(self.faults, self.total_nodes)
            if self.faults is not None
            else None
        )
        # Round-robin partition in arrival order balances shard load; the
        # result is partition-independent, so any deterministic rule works.
        order = sorted(range(len(specs)), key=lambda i: specs[i].arrival)
        owner = [0] * len(specs)
        assignments: list[list[tuple[int, JobSpec]]] = [[] for _ in range(K)]
        for pos, idx in enumerate(order):
            owner[idx] = pos % K
            assignments[pos % K].append((idx, specs[idx]))

        handles: list[ShardHandle] = []
        completed_run = False
        try:
            if mode == "process":
                ctx = multiprocessing.get_context()
                for sid in range(K):
                    handles.append(
                        _ProcessShardHandle(ctx, sid, assignments[sid])
                    )
            else:
                for sid in range(K):
                    shard = JobShard(sid)
                    for index, spec in assignments[sid]:
                        shard.schedule_arrival(index, spec)
                    handles.append(_LocalShardHandle(shard))
            stats = ShardStats(
                shards=K,
                mode=mode,
                shard_jobs=tuple(len(a) for a in assignments),
            )

            # Controller-side decision state, all K-independent.
            running: dict[int, MalleableJob] = {}
            last_change: dict[int, float] = {}
            last_bound = 0.0
            settled = 0  # jobs finished or failed
            # Lazy within-phase remaining tracking, kept only under a
            # fault plan: folded at exactly the barrier times where the
            # job's rate changes (the same sync points as the shard's
            # fluid task), so a victim's lost work is a K-independent
            # float.
            rem: dict[int, float] = {}
            rem_sync: dict[int, float] = {}

            def close_chunk(idx: int, now: float) -> None:
                mirror = mirrors[idx]
                mirror.node_seconds += mirror.nodes * (now - last_change[idx])
                last_change[idx] = now

            def fold_rem(idx: int, now: float) -> None:
                dt = now - rem_sync[idx]
                if dt > 0:
                    rem[idx] -= mirrors[idx].rate() * dt
                rem_sync[idx] = now

            def fault_lookahead() -> Optional[float]:
                # Post-workload faults must not drag barriers (and the
                # makespan) past the true end of the run.
                if settled >= len(mirrors):
                    return None
                return runtime.next_time()

            def apply_faults(now: float) -> bool:
                nonlocal settled
                ordered = sorted(
                    (idx, m.nodes) for idx, m in running.items()
                )
                fired, victims = runtime.fire(now, ordered)
                drops: dict[int, list[int]] = {}
                restarts: dict[int, list[int]] = {}
                for idx, entry in victims:
                    mirror = running.get(idx)
                    if mirror is None:
                        entry["outcome"] = "absent"
                        continue
                    fold_rem(idx, now)
                    lost = mirror.spec.phase_work[mirror.phase] - rem[idx]
                    if runtime.record_loss(idx, lost, entry) == "retry":
                        rem[idx] = mirror.spec.phase_work[mirror.phase]
                        mirror.remaining_in_phase = rem[idx]
                        restarts.setdefault(owner[idx], []).append(idx)
                    else:
                        close_chunk(idx, now)
                        mirror.failed = True
                        mirror.finished_at = now
                        mirror.nodes = 0
                        del running[idx]
                        del rem[idx], rem_sync[idx]
                        settled += 1
                        drops.setdefault(owner[idx], []).append(idx)
                if fired:
                    pending_ops["restarts"] = restarts
                    pending_ops["drops"] = drops
                return fired

            pending_ops: dict = {"restarts": {}, "drops": {}}

            def on_barrier(now: float, reports: list) -> bool:
                nonlocal last_bound, settled
                last_bound = now
                arrived: list[int] = []
                job_done = False
                for report in reports:
                    shard_arrived, completed = report
                    arrived.extend(shard_arrived)
                    for idx, done in completed:
                        mirror = mirrors[idx]
                        if done:
                            job_done = True
                            close_chunk(idx, now)
                            mirror.phase = len(mirror.spec.phase_work)
                            mirror.remaining_in_phase = 0.0
                            mirror.finished_at = now
                            mirror.nodes = 0
                            del running[idx]
                            settled += 1
                            if runtime is not None:
                                del rem[idx], rem_sync[idx]
                        else:
                            mirror.phase += 1
                            mirror.remaining_in_phase = (
                                mirror.spec.phase_work[mirror.phase]
                            )
                            if runtime is not None:
                                rem[idx] = mirror.remaining_in_phase
                                rem_sync[idx] = now
                # Completions settle before faults, faults before
                # arrivals — the eager engine's tie order.
                fired = False
                if runtime is not None:
                    fired = apply_faults(now)
                # Equal-arrival ties admit in spec order, matching the
                # FIFO order of the single-kernel event queue.
                arrived.sort()
                for idx in arrived:
                    running[idx] = mirrors[idx]
                    last_change[idx] = now
                    if runtime is not None:
                        rem[idx] = mirrors[idx].spec.phase_work[0]
                        rem_sync[idx] = now
                admissions: dict[int, list[int]] = {}
                for idx in arrived:
                    admissions.setdefault(owner[idx], []).append(idx)
                updates: dict[int, list[tuple[int, int, float]]] = {}
                if arrived or job_done or fired:
                    # A real membership (or fault) change: replay the
                    # global policy against the effective capacity.
                    stats.allocations += 1
                    capacity = self.total_nodes
                    if runtime is not None:
                        capacity = runtime.capacity(self.total_nodes)
                    allocation = self.scheduler.allocate(
                        list(running.values()), capacity
                    )
                    granted = sum(allocation.values())
                    if granted > capacity:
                        raise ConfigurationError(
                            f"{self.scheduler.name} over-allocated: "
                            f"{granted} > {capacity}"
                        )
                    if runtime is None:
                        for idx, mirror in running.items():
                            nodes = allocation.get(mirror, 0)
                            if nodes != mirror.nodes:
                                close_chunk(idx, now)
                                mirror.nodes = nodes
                                if nodes > 0 and math.isnan(
                                    mirror.started_at
                                ):
                                    mirror.started_at = now
                                updates.setdefault(owner[idx], []).append(
                                    (idx, nodes, 1.0)
                                )
                    else:
                        changed: set[int] = set()
                        for idx, mirror in running.items():
                            nodes = allocation.get(mirror, 0)
                            if nodes != mirror.nodes:
                                close_chunk(idx, now)
                                fold_rem(idx, now)
                                mirror.nodes = nodes
                                if nodes > 0 and math.isnan(
                                    mirror.started_at
                                ):
                                    mirror.started_at = now
                                changed.add(idx)
                        if runtime.factors_live:
                            factors = runtime.rate_factors(
                                sorted(
                                    (idx, m.nodes)
                                    for idx, m in running.items()
                                )
                            )
                            for idx, mirror in running.items():
                                f = factors[idx]
                                if f != mirror.rate_factor:
                                    fold_rem(idx, now)
                                    mirror.rate_factor = f
                                    changed.add(idx)
                        for idx, mirror in running.items():
                            if idx in changed:
                                updates.setdefault(owner[idx], []).append(
                                    (idx, mirror.nodes, mirror.rate_factor)
                                )
                else:
                    # Pure within-job phase boundaries: the scheduler's
                    # inputs (running set, grants, done flags) are
                    # unchanged, so by progress-insensitivity the
                    # allocation is too — skip the call.
                    stats.allocations_elided += 1
                restarts = pending_ops["restarts"]
                drops = pending_ops["drops"]
                pending_ops["restarts"] = {}
                pending_ops["drops"] = {}
                touched = sorted(
                    set(admissions) | set(updates) | set(restarts)
                    | set(drops)
                )
                for sid in touched:
                    handles[sid].begin_apply(
                        admissions.get(sid, ()),
                        updates.get(sid, ()),
                        (),
                        restarts.get(sid, ()),
                        drops.get(sid, ()),
                    )
                for sid in touched:
                    handles[sid].finish_apply()
                return True

            controller = EpochController(handles)
            controller.run(
                on_barrier,
                lookahead=fault_lookahead if runtime is not None else None,
            )
            stats.epochs = controller.stats.epochs
            stats.barrier_wait_s = controller.stats.barrier_wait_s
            completed_run = True
        finally:
            shard_events = []
            teardown_error: Optional[BaseException] = None
            for handle in handles:
                try:
                    events, _jobs = handle.shutdown()
                    shard_events.append(events)
                except Exception as exc:
                    shard_events.append(0)
                    if teardown_error is None:
                        teardown_error = exc
            # A lost shard invalidates the result, but never mask the
            # error that aborted the run body.
            if completed_run and teardown_error is not None:
                raise teardown_error

        stats.shard_events = tuple(shard_events)
        result = finalize_result(
            self.scheduler.name,
            self.total_nodes,
            mirrors,
            last_bound,
            stats.events_total,
            faults=runtime,
        )
        stats.wall_s = time.perf_counter() - t_start
        self.stats = stats
        return result

    def _run_open(
        self, stream: Iterator[tuple[float, JobSpec]]
    ) -> ServerResult:
        """The open-system path: stream-fed shards, O(active-jobs) state.

        The controller owns the stream: it buffers exactly one pending
        arrival, feeds its time into the epoch bound (the controller-side
        *lookahead*, so no epoch overshoots an arrival no shard knows
        about), and at each barrier admits due jobs to their owner shards
        via :meth:`JobShard.admit_spec`.  Completed jobs fold into a
        :class:`~repro.clusterserver.metrics.SloAggregator` in index
        order and are dropped everywhere — controller mirrors and shard
        state are both bounded by the active-job count.  All decisions
        replay in pull order, so the result (including the
        :class:`~repro.clusterserver.metrics.SloSummary`) is bit-identical
        for every shard count and mode.
        """
        t_start = time.perf_counter()
        mode = self._resolve_mode()
        K = self.shards
        agg = SloAggregator()
        runtime = (
            FaultRuntime(self.faults, self.total_nodes)
            if self.faults is not None
            else None
        )
        stats = ShardStats(shards=K, mode=mode)
        handles: list[ShardHandle] = []
        completed_run = False
        try:
            if mode == "process":
                ctx = multiprocessing.get_context()
                for sid in range(K):
                    handles.append(_ProcessShardHandle(ctx, sid, []))
            else:
                for sid in range(K):
                    handles.append(_LocalShardHandle(JobShard(sid)))

            # Controller-side decision state — active jobs only.
            running: dict[int, MalleableJob] = {}
            owner: dict[int, int] = {}
            last_change: dict[int, float] = {}
            rem: dict[int, float] = {}
            rem_sync: dict[int, float] = {}
            deferred: deque[tuple[int, JobSpec]] = deque()
            pending: list = [next(stream, None)]
            state = {"next_index": 0, "last_bound": 0.0}

            def lookahead() -> Optional[float]:
                item = pending[0]
                t = item[0] if item is not None else None
                if runtime is not None and (
                    item is not None or running or deferred
                ):
                    # Post-workload faults must not drag the makespan —
                    # only consult the fault clock while work remains.
                    ft = runtime.next_time()
                    if ft is not None and (t is None or ft < t):
                        t = ft
                return t

            def close_chunk(idx: int, now: float) -> None:
                mirror = running[idx]
                mirror.node_seconds += mirror.nodes * (now - last_change[idx])
                last_change[idx] = now

            def fold_rem(idx: int, now: float) -> None:
                dt = now - rem_sync[idx]
                if dt > 0:
                    rem[idx] -= running[idx].rate() * dt
                rem_sync[idx] = now

            def forget(idx: int) -> None:
                del running[idx]
                del owner[idx]
                del last_change[idx]
                if runtime is not None:
                    del rem[idx], rem_sync[idx]

            def admit_job(
                idx: int, spec: JobSpec, now: float, new_specs: dict
            ) -> None:
                running[idx] = MalleableJob(spec, index=idx)
                owner[idx] = idx % K
                last_change[idx] = now
                if runtime is not None:
                    rem[idx] = spec.phase_work[0]
                    rem_sync[idx] = now
                new_specs.setdefault(idx % K, []).append((idx, spec))

            def available_nodes() -> int:
                if runtime is not None:
                    return runtime.capacity(self.total_nodes)
                return self.total_nodes

            def apply_faults(now: float, ops: dict) -> bool:
                ordered = sorted(
                    (idx, m.nodes) for idx, m in running.items()
                )
                fired, victims = runtime.fire(now, ordered)
                for idx, entry in victims:
                    mirror = running.get(idx)
                    if mirror is None:
                        entry["outcome"] = "absent"
                        continue
                    fold_rem(idx, now)
                    lost = mirror.spec.phase_work[mirror.phase] - rem[idx]
                    if runtime.record_loss(idx, lost, entry) == "retry":
                        rem[idx] = mirror.spec.phase_work[mirror.phase]
                        mirror.remaining_in_phase = rem[idx]
                        ops["restarts"].setdefault(owner[idx], []).append(
                            idx
                        )
                    else:
                        close_chunk(idx, now)
                        mirror.failed = True
                        mirror.finished_at = now
                        mirror.nodes = 0
                        ops["drops"].setdefault(owner[idx], []).append(idx)
                        forget(idx)
                return fired

            def pull_arrivals(now: float, new_specs: dict) -> bool:
                """Admit/defer/reject every arrival due at or before now."""
                admitted = False
                while pending[0] is not None and pending[0][0] <= now:
                    t, spec = pending[0]
                    nxt = next(stream, None)
                    if nxt is not None and nxt[0] < t:
                        raise ConfigurationError(
                            "arrival process yielded decreasing times "
                            f"({nxt[0]} after {t}); streams must be "
                            "nondecreasing"
                        )
                    pending[0] = nxt
                    idx = state["next_index"]
                    state["next_index"] += 1
                    if self.scheduler.admit(
                        spec, list(running.values()), available_nodes()
                    ):
                        admit_job(idx, spec, now, new_specs)
                        admitted = True
                    elif self.scheduler.defer_rejected:
                        deferred.append((idx, spec))
                    else:
                        agg.observe_rejection(now, spec)
                return admitted

            def drain_deferred(now: float, new_specs: dict) -> None:
                while deferred and self.scheduler.admit(
                    deferred[0][1], list(running.values()), available_nodes()
                ):
                    idx, spec = deferred.popleft()
                    admit_job(idx, spec, now, new_specs)

            def on_barrier(now: float, reports: list) -> bool:
                state["last_bound"] = now
                job_done = False
                retired: list[tuple[int, MalleableJob]] = []
                for report in reports:
                    _arrived, completed = report
                    for idx, done in completed:
                        mirror = running[idx]
                        if done:
                            job_done = True
                            close_chunk(idx, now)
                            mirror.phase = len(mirror.spec.phase_work)
                            mirror.remaining_in_phase = 0.0
                            mirror.finished_at = now
                            mirror.nodes = 0
                            retired.append((idx, mirror))
                        else:
                            mirror.phase += 1
                            mirror.remaining_in_phase = (
                                mirror.spec.phase_work[mirror.phase]
                            )
                            if runtime is not None:
                                rem[idx] = mirror.remaining_in_phase
                                rem_sync[idx] = now
                # Fold retirements in index order: the aggregator's call
                # sequence — hence the SloSummary — is K-independent.
                for idx, mirror in sorted(retired):
                    forget(idx)
                    agg.observe_completion(mirror)
                ops: dict = {"restarts": {}, "drops": {}}
                fired = False
                if runtime is not None:
                    # Completions settle before faults, faults before
                    # arrivals — the eager engine's tie order.
                    fired = apply_faults(now, ops)
                new_specs: dict[int, list[tuple[int, JobSpec]]] = {}
                admitted = pull_arrivals(now, new_specs)
                if admitted or job_done or fired:
                    # Membership changed: deferred jobs get their retry,
                    # then the global policy replays.
                    drain_deferred(now, new_specs)
                    stats.allocations += 1
                    avail = available_nodes()
                    allocation = self.scheduler.allocate(
                        list(running.values()), avail
                    )
                    granted = sum(allocation.values())
                    capacity = self.scheduler.capacity(avail)
                    if granted > capacity:
                        raise ConfigurationError(
                            f"{self.scheduler.name} over-allocated: "
                            f"{granted} > {capacity}"
                        )
                    updates: dict[int, list[tuple[int, int, float]]] = {}
                    if runtime is None:
                        for idx, mirror in running.items():
                            nodes = allocation.get(mirror, 0)
                            if nodes != mirror.nodes:
                                close_chunk(idx, now)
                                mirror.nodes = nodes
                                if nodes > 0 and math.isnan(
                                    mirror.started_at
                                ):
                                    mirror.started_at = now
                                updates.setdefault(owner[idx], []).append(
                                    (idx, nodes, 1.0)
                                )
                    else:
                        changed: set[int] = set()
                        for idx, mirror in running.items():
                            nodes = allocation.get(mirror, 0)
                            if nodes != mirror.nodes:
                                close_chunk(idx, now)
                                fold_rem(idx, now)
                                mirror.nodes = nodes
                                if nodes > 0 and math.isnan(
                                    mirror.started_at
                                ):
                                    mirror.started_at = now
                                changed.add(idx)
                        if runtime.factors_live:
                            factors = runtime.rate_factors(
                                sorted(
                                    (idx, m.nodes)
                                    for idx, m in running.items()
                                )
                            )
                            for idx, mirror in running.items():
                                f = factors[idx]
                                if f != mirror.rate_factor:
                                    fold_rem(idx, now)
                                    mirror.rate_factor = f
                                    changed.add(idx)
                        for idx, mirror in running.items():
                            if idx in changed:
                                updates.setdefault(owner[idx], []).append(
                                    (idx, mirror.nodes, mirror.rate_factor)
                                )
                    agg.observe_utilization(now, granted, capacity)
                else:
                    # Pure phase boundaries (or rejected arrivals): no
                    # scheduler-visible change, by progress-insensitivity.
                    stats.allocations_elided += 1
                    updates = {}
                touched = sorted(
                    set(new_specs) | set(updates) | set(ops["restarts"])
                    | set(ops["drops"])
                )
                for sid in touched:
                    handles[sid].begin_apply(
                        (),
                        updates.get(sid, ()),
                        new_specs.get(sid, ()),
                        ops["restarts"].get(sid, ()),
                        ops["drops"].get(sid, ()),
                    )
                for sid in touched:
                    handles[sid].finish_apply()
                return True

            controller = EpochController(handles)
            controller.run(on_barrier, lookahead=lookahead)
            stats.epochs = controller.stats.epochs
            stats.barrier_wait_s = controller.stats.barrier_wait_s
            completed_run = True
        finally:
            shard_events = []
            shard_jobs = []
            teardown_error: Optional[BaseException] = None
            for handle in handles:
                try:
                    events, jobs_seen = handle.shutdown()
                    shard_events.append(events)
                    shard_jobs.append(jobs_seen)
                except Exception as exc:
                    shard_events.append(0)
                    shard_jobs.append(0)
                    if teardown_error is None:
                        teardown_error = exc
            if completed_run and teardown_error is not None:
                raise teardown_error

        stats.shard_events = tuple(shard_events)
        stats.shard_jobs = tuple(shard_jobs)
        if running or deferred:
            starved = len(running) + len(deferred)
            raise ConfigurationError(
                f"{self.scheduler.name}: {starved} jobs never "
                "completed (policy starved them); check min_nodes and "
                "cluster size"
            )
        if runtime is not None:
            agg.retries = runtime.retries
            agg.lost_work = runtime.lost_work
            agg.failed_jobs = runtime.failed_jobs
        summary = agg.summary(state["last_bound"])
        result = ServerResult(
            scheduler=self.scheduler.name,
            total_nodes=self.total_nodes,
            makespan=state["last_bound"],
            job_turnaround={},
            job_node_seconds={},
            total_work=summary.total_work,
            events=stats.events_total,
            slo=summary,
            jobs_completed=summary.jobs_completed,
            jobs_rejected=summary.jobs_rejected,
            retries=summary.retries,
            lost_work=summary.lost_work,
            failed_jobs=summary.failed_jobs,
            fault_trace=tuple(runtime.trace) if runtime is not None else (),
        )
        stats.wall_s = time.perf_counter() - t_start
        self.stats = stats
        return result
