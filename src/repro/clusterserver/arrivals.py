"""Open-system arrival processes: lazy ``(time, JobSpec)`` streams.

The closed workloads of :mod:`repro.clusterserver.workload` materialize
every job up front — fine for paper-scale scenarios, fatal for the
ROADMAP's production-scale regime where job counts climb orders of
magnitude.  An :class:`ArrivalProcess` is the open-system counterpart:
any iterable yielding ``(arrival_time, JobSpec)`` pairs in nondecreasing
time order, consumed lazily by the engines so that only *active* jobs
ever hold memory.

Four generator families cover the usual traffic shapes:

* :func:`poisson_arrivals` — memoryless arrivals at a constant rate, the
  open-system analogue of ``synthetic_workload``;
* :func:`bursty_arrivals` — a two-state MMPP (Markov-modulated Poisson
  process): quiet/burst phases with exponential dwell times, the burst
  state arriving ``burst_factor`` times faster;
* :func:`diurnal_arrivals` — a sinusoidal rate profile via Lewis-Shedler
  thinning, modeling daily load cycles;
* :func:`trace_arrivals` — replay of a JSON-lines trace file, one job
  per line.

All generators draw from :class:`~repro.util.rng.SeedSequenceFactory`
streams keyed by process name, so a given ``(process, seed)`` pair is a
reproducible workload.  Every process takes a stop condition — a job
count, a time horizon, or both — because an unbounded stream with no
admission control would never drain.

:func:`closed_stream` adapts a materialized job list to the stream
interface, letting both engines speak streams exclusively while the
closed paths stay bit-identical.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.clusterserver.workload import (
    JobSpec,
    amdahl_efficiency,
    lu_like_job,
    rampup_job,
    stencil_like_job,
)
from repro.errors import ConfigurationError
from repro.util.rng import SeedSequenceFactory

#: An arrival process: yields ``(arrival_time, JobSpec)`` lazily, in
#: nondecreasing time order.  Any iterable qualifies; the generators in
#: this module are the built-in implementations.
ArrivalProcess = Iterable[tuple[float, JobSpec]]

#: Job-shape families an arrival process can sample (the same draw
#: conventions as the closed ``synthetic_workload``/``mixed_workload``).
JOB_SHAPES = ("lu", "mixed")


def _check_stop(jobs: Optional[int], horizon: Optional[float]) -> None:
    if jobs is None and horizon is None:
        raise ConfigurationError(
            "an arrival process needs a stop condition: set jobs (count) "
            "and/or horizon (last admission time)"
        )
    if jobs is not None and jobs < 1:
        raise ConfigurationError("arrivals.jobs must be >= 1")
    if horizon is not None and horizon <= 0:
        raise ConfigurationError("arrivals.horizon must be > 0")


def _sample_job(shape: str, rng, index: int, t: float, max_nodes: int) -> JobSpec:
    """Draw one job of the given shape family (same draws as the closed
    generators, so stream workloads stay statistically comparable)."""
    if shape == "lu":
        return lu_like_job(
            f"job{index}",
            arrival=t,
            nb=int(rng.integers(4, 12)),
            unit_work=float(rng.uniform(5.0, 25.0)),
            parallel_fraction=float(rng.uniform(0.92, 0.99)),
            max_nodes=max_nodes,
        )
    if shape == "mixed":
        unit = float(rng.uniform(5.0, 25.0))
        pf = float(rng.uniform(0.92, 0.99))
        kind = int(rng.integers(0, 3))
        if kind == 0:
            return lu_like_job(
                f"lu{index}", t, nb=int(rng.integers(4, 12)), unit_work=unit,
                parallel_fraction=pf, max_nodes=max_nodes,
            )
        if kind == 1:
            return stencil_like_job(
                f"st{index}", t, iterations=int(rng.integers(5, 15)),
                unit_work=unit, parallel_fraction=pf, max_nodes=max_nodes,
            )
        return rampup_job(
            f"rr{index}", t, phases=int(rng.integers(4, 10)),
            unit_work=unit, parallel_fraction=pf, max_nodes=max_nodes,
        )
    raise ConfigurationError(
        f"unknown job shape {shape!r}; choose from {list(JOB_SHAPES)}"
    )


def poisson_arrivals(
    mean_interarrival: float = 25.0,
    *,
    shape: str = "lu",
    seed: int = 0,
    max_nodes: int = 8,
    jobs: Optional[int] = None,
    horizon: Optional[float] = None,
) -> Iterator[tuple[float, JobSpec]]:
    """Constant-rate memoryless arrivals (rate ``1/mean_interarrival``)."""
    if mean_interarrival <= 0:
        raise ConfigurationError("mean_interarrival must be > 0")
    _check_stop(jobs, horizon)
    rng = SeedSequenceFactory(seed).rng("arrivals/poisson")
    t = 0.0
    i = 0
    while jobs is None or i < jobs:
        t += float(rng.exponential(mean_interarrival))
        if horizon is not None and t > horizon:
            return
        yield t, _sample_job(shape, rng, i, t, max_nodes)
        i += 1


def bursty_arrivals(
    mean_interarrival: float = 25.0,
    *,
    burst_factor: float = 8.0,
    mean_quiet: float = 400.0,
    mean_burst: float = 100.0,
    shape: str = "lu",
    seed: int = 0,
    max_nodes: int = 8,
    jobs: Optional[int] = None,
    horizon: Optional[float] = None,
) -> Iterator[tuple[float, JobSpec]]:
    """Two-state MMPP: quiet/burst phases with exponential dwell times.

    The quiet state arrives at ``1/mean_interarrival``; the burst state
    ``burst_factor`` times faster.  Dwell times are exponential with
    means ``mean_quiet``/``mean_burst``.  Because the exponential is
    memoryless, redrawing the pending gap at each state switch is
    distributionally exact.
    """
    if mean_interarrival <= 0:
        raise ConfigurationError("mean_interarrival must be > 0")
    if burst_factor < 1.0:
        raise ConfigurationError("burst_factor must be >= 1")
    if mean_quiet <= 0 or mean_burst <= 0:
        raise ConfigurationError("mean_quiet and mean_burst must be > 0")
    _check_stop(jobs, horizon)
    rng = SeedSequenceFactory(seed).rng("arrivals/bursty")
    t = 0.0
    i = 0
    bursting = False
    t_switch = t + float(rng.exponential(mean_quiet))
    while jobs is None or i < jobs:
        mean = mean_interarrival / (burst_factor if bursting else 1.0)
        gap = float(rng.exponential(mean))
        if t + gap >= t_switch:
            # Dwell expired before the next arrival: flip state and
            # redraw from the switch instant (exact by memorylessness).
            t = t_switch
            bursting = not bursting
            t_switch = t + float(
                rng.exponential(mean_burst if bursting else mean_quiet)
            )
            continue
        t += gap
        if horizon is not None and t > horizon:
            return
        yield t, _sample_job(shape, rng, i, t, max_nodes)
        i += 1


def diurnal_arrivals(
    mean_interarrival: float = 25.0,
    *,
    amplitude: float = 0.5,
    period: float = 1000.0,
    shape: str = "lu",
    seed: int = 0,
    max_nodes: int = 8,
    jobs: Optional[int] = None,
    horizon: Optional[float] = None,
) -> Iterator[tuple[float, JobSpec]]:
    """Sinusoidal rate profile via Lewis-Shedler thinning.

    The instantaneous rate is ``(1 + amplitude * sin(2*pi*t/period)) /
    mean_interarrival``: candidate arrivals are drawn at the peak rate
    and accepted with probability ``rate(t)/peak``.
    """
    if mean_interarrival <= 0:
        raise ConfigurationError("mean_interarrival must be > 0")
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError("amplitude must be in [0, 1)")
    if period <= 0:
        raise ConfigurationError("period must be > 0")
    _check_stop(jobs, horizon)
    rng = SeedSequenceFactory(seed).rng("arrivals/diurnal")
    base = 1.0 / mean_interarrival
    peak = base * (1.0 + amplitude)
    t = 0.0
    i = 0
    while jobs is None or i < jobs:
        t += float(rng.exponential(1.0 / peak))
        if horizon is not None and t > horizon:
            return
        rate = base * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))
        if float(rng.uniform(0.0, 1.0)) * peak >= rate:
            continue  # thinned-out candidate
        yield t, _sample_job(shape, rng, i, t, max_nodes)
        i += 1


def trace_arrivals(
    path: "str | Path",
    *,
    jobs: Optional[int] = None,
    horizon: Optional[float] = None,
) -> Iterator[tuple[float, JobSpec]]:
    """Replay a JSON-lines trace file, one job per line.

    Each line is an object with ``arrival`` (seconds) and ``phase_work``
    (list of positive floats), plus optional ``name``,
    ``parallel_fraction`` (default 0.95), ``max_nodes`` (default 8),
    ``min_nodes`` and ``preferred_nodes``.  Lines must be in
    nondecreasing arrival order.  Unlike the synthetic processes a trace
    is finite by construction, so the stop condition is optional and only
    truncates.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read arrival trace: {exc}") from None
    last_t = -math.inf
    emitted = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if jobs is not None and emitted >= jobs:
            return
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path.name}:{lineno}: invalid JSON: {exc}"
            ) from None
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"{path.name}:{lineno}: each trace line must be an object"
            )
        try:
            t = float(entry["arrival"])
            work = tuple(float(w) for w in entry["phase_work"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"{path.name}:{lineno}: needs 'arrival' and 'phase_work': "
                f"{exc}"
            ) from None
        if t < last_t:
            raise ConfigurationError(
                f"{path.name}:{lineno}: arrivals must be nondecreasing "
                f"({t} after {last_t})"
            )
        last_t = t
        if horizon is not None and t > horizon:
            return
        try:
            spec = JobSpec(
                name=str(entry.get("name", f"trace{lineno}")),
                arrival=t,
                phase_work=work,
                efficiency=amdahl_efficiency(
                    float(entry.get("parallel_fraction", 0.95))
                ),
                max_nodes=int(entry.get("max_nodes", 8)),
                min_nodes=int(entry.get("min_nodes", 1)),
                preferred_nodes=int(entry.get("preferred_nodes", 0)),
            )
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"{path.name}:{lineno}: bad job: {exc}"
            ) from None
        yield t, spec
        emitted += 1


def closed_stream(
    specs: Sequence[JobSpec],
) -> Iterator[tuple[float, JobSpec]]:
    """Adapt a materialized (closed) job list to the stream interface.

    Yields the exact ``JobSpec`` objects in arrival order, so a closed
    workload pushed through the open-system machinery reproduces the
    closed run bit-for-bit.
    """
    for spec in sorted(specs, key=lambda s: s.arrival):
        yield spec.arrival, spec
