"""Node-allocation policies for the cluster server.

Three policies bracket the design space the paper motivates:

* :class:`StaticScheduler` — conventional fixed allocation: a job gets its
  nodes at start and keeps them to the end (the baseline the paper argues
  against),
* :class:`EquipartitionScheduler` — classic malleable scheduling: nodes
  divided evenly among running jobs, reallocated on arrivals/departures,
* :class:`AdaptiveEfficiencyScheduler` — dynamic-efficiency-aware: jobs
  whose *current phase* no longer uses nodes efficiently (as the LU tail
  iterations don't) are shrunk, releasing nodes for queued or efficient
  jobs — the policy the paper's simulator exists to enable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.clusterserver.workload import MalleableJob
from repro.errors import ConfigurationError


class Scheduler(ABC):
    """Decides each running job's node count at every scheduling point."""

    name = "scheduler"

    #: Whether :meth:`allocate` depends only on *membership state*: the
    #: running set and its order, each job's spec, current node grant and
    #: done flag — never on job progress (``phase``,
    #: ``remaining_in_phase``, ``remaining_work``).  All built-in policies
    #: qualify.  The sharded server (:mod:`repro.clusterserver.sharded`)
    #: requires this, and *relies* on it: at barriers where no job
    #: arrived or completed, only phase indices and within-phase progress
    #: have changed, so the flag licenses eliding the reallocation call
    #: entirely — a phase-reading policy under that elision would
    #: silently diverge from the eager
    #: :class:`~repro.clusterserver.server.ClusterServer`, which
    #: reallocates at every phase boundary.  Set to ``False`` in a
    #: subclass that reads any job progress (including the phase index);
    #: such a policy still works under ``ClusterServer`` but is rejected
    #: by ``ShardedServer``.
    progress_insensitive = True

    @abstractmethod
    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        """Return the node count for every running job (0 allowed).

        The sum over jobs must not exceed ``total_nodes``.
        """


def _clamp(job: MalleableJob, nodes: int) -> int:
    return max(
        0, min(int(nodes), job.spec.max_nodes)
    )


class StaticScheduler(Scheduler):
    """Fixed allocation: first-come first-served, never resized.

    A job receives ``nodes_per_job`` when enough nodes are free, and holds
    them until completion; later arrivals queue.
    """

    name = "static"

    def __init__(self, nodes_per_job: int) -> None:
        if nodes_per_job < 1:
            raise ConfigurationError("nodes_per_job must be >= 1")
        self.nodes_per_job = nodes_per_job

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        allocation: dict[MalleableJob, int] = {}
        free = total_nodes
        for job in running:
            if job.nodes > 0:
                # Static: once granted, keep exactly the same allocation.
                allocation[job] = job.nodes
                free -= job.nodes
        for job in running:
            if job not in allocation or allocation[job] == 0:
                want = _clamp(job, self.nodes_per_job)
                if want <= free:
                    allocation[job] = want
                    free -= want
                else:
                    allocation[job] = 0
        return allocation


class FcfsScheduler(Scheduler):
    """First-come first-served at each job's *requested* size.

    Jobs receive ``spec.request`` nodes in arrival order and keep them to
    completion.  Without backfill, a large job at the head of the queue
    blocks everything behind it; with ``backfill=True`` later jobs that fit
    in the leftover nodes start immediately.  (Jobs are fluid and have no
    reservations, so this is the aggressive/"EASY-without-reservations"
    flavour of backfilling.)
    """

    def __init__(self, backfill: bool = False) -> None:
        self.backfill = backfill

    @property
    def name(self) -> str:  # type: ignore[override]
        return "fcfs+backfill" if self.backfill else "fcfs"

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        allocation: dict[MalleableJob, int] = {}
        free = total_nodes
        # Started jobs are rigid: they keep their grant.
        for job in running:
            if job.nodes > 0:
                allocation[job] = job.nodes
                free -= job.nodes
        queued = sorted(
            (j for j in running if allocation.get(j, 0) == 0),
            key=lambda j: j.spec.arrival,
        )
        for job in queued:
            want = _clamp(job, job.spec.request) or job.spec.min_nodes
            if want <= free:
                allocation[job] = want
                free -= want
            else:
                allocation[job] = 0
                if not self.backfill:
                    break  # head-of-line blocking
        for job in queued:
            allocation.setdefault(job, 0)
        return allocation


class EquipartitionScheduler(Scheduler):
    """Divide the cluster evenly among running jobs (classic malleable)."""

    name = "equipartition"

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        active = [j for j in running if not j.done]
        if not active:
            return {}
        base = total_nodes // len(active)
        extra = total_nodes % len(active)
        allocation = {}
        free = 0
        for i, job in enumerate(sorted(active, key=lambda j: j.spec.arrival)):
            share = base + (1 if i < extra else 0)
            granted = _clamp(job, max(share, job.spec.min_nodes if share else 0))
            allocation[job] = min(granted, share) if share else 0
            free += share - allocation[job]
        # Redistribute capped-away nodes greedily by arrival order.
        for job in sorted(active, key=lambda j: j.spec.arrival):
            if free <= 0:
                break
            room = job.spec.max_nodes - allocation[job]
            take = min(room, free)
            allocation[job] += take
            free -= take
        return allocation


class AdaptiveEfficiencyScheduler(Scheduler):
    """Shrink jobs whose current phase uses nodes inefficiently.

    For each job, pick the largest node count whose *marginal* efficiency
    stays above ``efficiency_floor`` — i.e. stop adding nodes once an extra
    node buys less than ``efficiency_floor`` of a node's worth of
    throughput.  Freed nodes go to queued/efficient jobs, raising the
    cluster's service rate exactly as section 8 of the paper describes
    ("the service rate of the cluster can be significantly increased if
    the deallocated compute nodes are assigned to other applications").
    """

    name = "adaptive"

    def __init__(self, efficiency_floor: float = 0.5) -> None:
        if not 0.0 < efficiency_floor <= 1.0:
            raise ConfigurationError("efficiency_floor must be in (0, 1]")
        self.efficiency_floor = efficiency_floor

    def _desired(self, job: MalleableJob, cap: int) -> int:
        best = job.spec.min_nodes
        prev_rate = 0.0
        for n in range(1, min(cap, job.spec.max_nodes) + 1):
            rate = n * job.spec.efficiency(n)
            marginal = rate - prev_rate
            if n > 1 and marginal < self.efficiency_floor:
                break
            best = n
            prev_rate = rate
        return best

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        active = sorted(
            (j for j in running if not j.done), key=lambda j: j.spec.arrival
        )
        if not active:
            return {}
        allocation = {job: 0 for job in active}
        free = total_nodes
        # First pass: everyone gets their minimum, by arrival order.
        for job in active:
            grant = min(job.spec.min_nodes, free)
            allocation[job] = grant
            free -= grant
            if free <= 0:
                break
        # Second pass: grow each job up to its efficient size.
        for job in active:
            if free <= 0:
                break
            desired = self._desired(job, allocation[job] + free)
            grow = max(0, desired - allocation[job])
            take = min(grow, free)
            allocation[job] += take
            free -= take
        return allocation
