"""Node-allocation policies for the cluster server.

Three policies bracket the design space the paper motivates:

* :class:`StaticScheduler` — conventional fixed allocation: a job gets its
  nodes at start and keeps them to the end (the baseline the paper argues
  against),
* :class:`EquipartitionScheduler` — classic malleable scheduling: nodes
  divided evenly among running jobs, reallocated on arrivals/departures,
* :class:`AdaptiveEfficiencyScheduler` — dynamic-efficiency-aware: jobs
  whose *current phase* no longer uses nodes efficiently (as the LU tail
  iterations don't) are shrunk, releasing nodes for queued or efficient
  jobs — the policy the paper's simulator exists to enable.

Two *wrapper* policies target the open-system regime (arrival streams
served indefinitely, see ``docs/workloads.md``), composing around any of
the above:

* :class:`AdmissionControlScheduler` — reject or defer new jobs when the
  queue or load crosses a limit, bounding sojourn times under overload,
* :class:`AutoscalingScheduler` — grow/shrink the usable node pool
  against utilization targets, modeling an elastic cluster.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.clusterserver.workload import JobSpec, MalleableJob
from repro.errors import ConfigurationError


class Scheduler(ABC):
    """Decides each running job's node count at every scheduling point."""

    name = "scheduler"

    #: Whether :meth:`allocate` depends only on *membership state*: the
    #: running set and its order, each job's spec, current node grant and
    #: done flag — never on job progress (``phase``,
    #: ``remaining_in_phase``, ``remaining_work``).  All built-in policies
    #: qualify.  The sharded server (:mod:`repro.clusterserver.sharded`)
    #: requires this, and *relies* on it: at barriers where no job
    #: arrived or completed, only phase indices and within-phase progress
    #: have changed, so the flag licenses eliding the reallocation call
    #: entirely — a phase-reading policy under that elision would
    #: silently diverge from the eager
    #: :class:`~repro.clusterserver.server.ClusterServer`, which
    #: reallocates at every phase boundary.  Set to ``False`` in a
    #: subclass that reads any job progress (including the phase index);
    #: such a policy still works under ``ClusterServer`` but is rejected
    #: by ``ShardedServer``.
    progress_insensitive = True

    #: Open-system engines only: when :meth:`admit` refuses a job, should
    #: it be *deferred* (retried at the next membership change) instead of
    #: rejected outright?  Plain policies admit everything, so the flag is
    #: only meaningful on admission-control wrappers.
    defer_rejected = False

    @abstractmethod
    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        """Return the node count for every running job (0 allowed).

        The sum over jobs must not exceed ``total_nodes``.
        """

    def admit(
        self, spec: JobSpec, running: Sequence[MalleableJob], total_nodes: int
    ) -> bool:
        """Open-system admission hook: accept ``spec`` into the system?

        Called by the open-system engines for every arrival *before* the
        job joins the running set.  The default admits everything (the
        closed-system behaviour).  Must be progress-insensitive under the
        same contract as :meth:`allocate`.
        """
        return True

    def capacity(self, total_nodes: int) -> int:
        """Nodes currently usable (autoscalers shrink this below total)."""
        return total_nodes


def _clamp(job: MalleableJob, nodes: int) -> int:
    return max(
        0, min(int(nodes), job.spec.max_nodes)
    )


class StaticScheduler(Scheduler):
    """Fixed allocation: first-come first-served, never resized.

    A job receives ``nodes_per_job`` when enough nodes are free, and holds
    them until completion; later arrivals queue.
    """

    name = "static"

    def __init__(self, nodes_per_job: int) -> None:
        if nodes_per_job < 1:
            raise ConfigurationError("nodes_per_job must be >= 1")
        self.nodes_per_job = nodes_per_job

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        allocation: dict[MalleableJob, int] = {}
        free = total_nodes
        for job in running:
            if job.nodes > 0:
                # Static: once granted, keep exactly the same allocation.
                allocation[job] = job.nodes
                free -= job.nodes
        for job in running:
            if job not in allocation or allocation[job] == 0:
                want = _clamp(job, self.nodes_per_job)
                if want <= free:
                    allocation[job] = want
                    free -= want
                else:
                    allocation[job] = 0
        return allocation


class FcfsScheduler(Scheduler):
    """First-come first-served at each job's *requested* size.

    Jobs receive ``spec.request`` nodes in arrival order and keep them to
    completion.  Without backfill, a large job at the head of the queue
    blocks everything behind it; with ``backfill=True`` later jobs that fit
    in the leftover nodes start immediately.  (Jobs are fluid and have no
    reservations, so this is the aggressive/"EASY-without-reservations"
    flavour of backfilling.)
    """

    def __init__(self, backfill: bool = False) -> None:
        self.backfill = backfill

    @property
    def name(self) -> str:  # type: ignore[override]
        return "fcfs+backfill" if self.backfill else "fcfs"

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        allocation: dict[MalleableJob, int] = {}
        free = total_nodes
        # Started jobs are rigid: they keep their grant.
        for job in running:
            if job.nodes > 0:
                allocation[job] = job.nodes
                free -= job.nodes
        queued = sorted(
            (j for j in running if allocation.get(j, 0) == 0),
            key=lambda j: j.spec.arrival,
        )
        for job in queued:
            want = _clamp(job, job.spec.request) or job.spec.min_nodes
            if want <= free:
                allocation[job] = want
                free -= want
            else:
                allocation[job] = 0
                if not self.backfill:
                    break  # head-of-line blocking
        for job in queued:
            allocation.setdefault(job, 0)
        return allocation


class EquipartitionScheduler(Scheduler):
    """Divide the cluster evenly among running jobs (classic malleable)."""

    name = "equipartition"

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        active = [j for j in running if not j.done]
        if not active:
            return {}
        base = total_nodes // len(active)
        extra = total_nodes % len(active)
        allocation = {}
        free = 0
        for i, job in enumerate(sorted(active, key=lambda j: j.spec.arrival)):
            share = base + (1 if i < extra else 0)
            granted = _clamp(job, max(share, job.spec.min_nodes if share else 0))
            allocation[job] = min(granted, share) if share else 0
            free += share - allocation[job]
        # Redistribute capped-away nodes greedily by arrival order.
        for job in sorted(active, key=lambda j: j.spec.arrival):
            if free <= 0:
                break
            room = job.spec.max_nodes - allocation[job]
            take = min(room, free)
            allocation[job] += take
            free -= take
        return allocation


class AdaptiveEfficiencyScheduler(Scheduler):
    """Shrink jobs whose current phase uses nodes inefficiently.

    For each job, pick the largest node count whose *marginal* efficiency
    stays above ``efficiency_floor`` — i.e. stop adding nodes once an extra
    node buys less than ``efficiency_floor`` of a node's worth of
    throughput.  Freed nodes go to queued/efficient jobs, raising the
    cluster's service rate exactly as section 8 of the paper describes
    ("the service rate of the cluster can be significantly increased if
    the deallocated compute nodes are assigned to other applications").
    """

    name = "adaptive"

    def __init__(self, efficiency_floor: float = 0.5) -> None:
        if not 0.0 < efficiency_floor <= 1.0:
            raise ConfigurationError("efficiency_floor must be in (0, 1]")
        self.efficiency_floor = efficiency_floor

    def _desired(self, job: MalleableJob, cap: int) -> int:
        best = job.spec.min_nodes
        prev_rate = 0.0
        for n in range(1, min(cap, job.spec.max_nodes) + 1):
            rate = n * job.spec.efficiency(n)
            marginal = rate - prev_rate
            if n > 1 and marginal < self.efficiency_floor:
                break
            best = n
            prev_rate = rate
        return best

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        active = sorted(
            (j for j in running if not j.done), key=lambda j: j.spec.arrival
        )
        if not active:
            return {}
        allocation = {job: 0 for job in active}
        free = total_nodes
        # First pass: everyone gets their minimum, by arrival order.
        for job in active:
            grant = min(job.spec.min_nodes, free)
            allocation[job] = grant
            free -= grant
            if free <= 0:
                break
        # Second pass: grow each job up to its efficient size.
        for job in active:
            if free <= 0:
                break
            desired = self._desired(job, allocation[job] + free)
            grow = max(0, desired - allocation[job])
            take = min(grow, free)
            allocation[job] += take
            free -= take
        return allocation


class AdmissionControlScheduler(Scheduler):
    """Reject or defer arrivals past a queue-length or load threshold.

    Wraps any inner policy: :meth:`allocate` delegates untouched, while
    :meth:`admit` refuses a new job when any configured limit is hit —

    * ``max_active`` — total jobs in the system (running + queued),
    * ``max_queued`` — jobs admitted but still holding zero nodes,
    * ``load_max`` — granted nodes as a fraction of the cluster
      (e.g. ``0.9`` refuses arrivals while >= 90% of nodes are busy).

    ``defer=True`` parks refused jobs for retry at the next membership
    change instead of rejecting them outright (rejects count toward the
    run's rejection rate, deferrals toward its waiting time).  Only the
    open-system engines consult :meth:`admit`; under a closed workload
    list the wrapper is inert.
    """

    def __init__(
        self,
        inner: Scheduler,
        max_active: Optional[int] = None,
        max_queued: Optional[int] = None,
        load_max: Optional[float] = None,
        defer: bool = False,
    ) -> None:
        if max_active is None and max_queued is None and load_max is None:
            raise ConfigurationError(
                "admission control needs at least one limit: max_active, "
                "max_queued or load_max"
            )
        if max_active is not None and max_active < 1:
            raise ConfigurationError("max_active must be >= 1")
        if max_queued is not None and max_queued < 0:
            raise ConfigurationError("max_queued must be >= 0")
        if load_max is not None and not 0.0 < load_max <= 1.0:
            raise ConfigurationError("load_max must be in (0, 1]")
        self.inner = inner
        self.max_active = max_active
        self.max_queued = max_queued
        self.load_max = load_max
        self.defer_rejected = defer

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"admission+{self.inner.name}"

    @property
    def progress_insensitive(self) -> bool:  # type: ignore[override]
        # admit() reads only membership state (counts and grants), so the
        # wrapper is exactly as shardable as its inner policy.
        return self.inner.progress_insensitive

    def admit(
        self, spec: JobSpec, running: Sequence[MalleableJob], total_nodes: int
    ) -> bool:
        if self.max_active is not None and len(running) >= self.max_active:
            return False
        if self.max_queued is not None:
            queued = sum(1 for j in running if j.nodes == 0)
            if queued >= self.max_queued:
                return False
        if self.load_max is not None:
            granted = sum(j.nodes for j in running)
            if granted >= self.load_max * total_nodes:
                return False
        return True

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        return self.inner.allocate(running, total_nodes)

    def capacity(self, total_nodes: int) -> int:
        return self.inner.capacity(total_nodes)


class AutoscalingScheduler(Scheduler):
    """Grow/shrink the usable node pool against utilization targets.

    Models an elastic cluster: the inner policy allocates against a
    *pool* of ``[min_nodes, total_nodes]`` nodes rather than the full
    cluster.  At every membership change (arrival or completion) the
    pool resizes by ``step`` nodes: utilization at or above
    ``utilization_high`` grows it, at or below ``utilization_low``
    shrinks it (never below the current grant).  ``step=0`` defaults to
    one eighth of the cluster.

    Resizing keyed to membership *changes* keeps :meth:`allocate`
    idempotent for unchanged inputs — the property the sharded engine's
    barrier elision relies on — so the wrapper is exactly as shardable
    as its inner policy.
    """

    def __init__(
        self,
        inner: Scheduler,
        min_nodes: int = 1,
        utilization_low: float = 0.5,
        utilization_high: float = 0.9,
        step: int = 0,
    ) -> None:
        if min_nodes < 1:
            raise ConfigurationError("min_nodes must be >= 1")
        if not 0.0 <= utilization_low < utilization_high <= 1.0:
            raise ConfigurationError(
                "need 0 <= utilization_low < utilization_high <= 1"
            )
        if step < 0:
            raise ConfigurationError("step must be >= 0")
        self.inner = inner
        self.min_nodes = min_nodes
        self.utilization_low = utilization_low
        self.utilization_high = utilization_high
        self.step = step
        self._pool: Optional[int] = None
        self._last_granted = 0
        self._signature: Optional[tuple[str, ...]] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"autoscale+{self.inner.name}"

    @property
    def progress_insensitive(self) -> bool:  # type: ignore[override]
        return self.inner.progress_insensitive

    def capacity(self, total_nodes: int) -> int:
        if self._pool is None:
            return min(self.min_nodes, total_nodes)
        return self._pool

    def allocate(
        self, running: Sequence[MalleableJob], total_nodes: int
    ) -> dict[MalleableJob, int]:
        if self._pool is None:
            self._pool = min(self.min_nodes, total_nodes)
        step = self.step or max(1, total_nodes // 8)
        floor = min(self.min_nodes, total_nodes)
        signature = tuple(j.spec.name for j in running)
        if signature != self._signature:
            # Membership changed: one resize decision per change.
            self._signature = signature
            util = self._last_granted / self._pool if self._pool else 0.0
            if util >= self.utilization_high:
                self._pool = min(total_nodes, self._pool + step)
            elif util <= self.utilization_low:
                self._pool = max(
                    floor, self._last_granted, self._pool - step
                )
        allocation = self.inner.allocate(running, self._pool)
        granted = sum(allocation.values())
        # Cold-start escape: a small pool can leave rigid policies unable
        # to grant anything (e.g. static wanting 8 of a 2-node pool).
        # Growing until the first grant (or the full cluster) is
        # deterministic and idempotent, so it cannot starve the run.
        active = any(not j.done for j in running)
        while active and granted == 0 and self._pool < total_nodes:
            self._pool = min(total_nodes, self._pool + step)
            allocation = self.inner.allocate(running, self._pool)
            granted = sum(allocation.values())
        self._last_granted = granted
        return allocation
