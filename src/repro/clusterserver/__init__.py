"""Cluster server simulation — the paper's future work, implemented.

"In the future, we intend to extend the simulation framework in order to
simulate a cluster server running concurrently multiple, possibly
different applications whose allocations of compute nodes vary dynamically
over time." — paper, section 9.

This subpackage simulates such a server: malleable jobs characterized by
their **dynamic efficiency profiles** (as produced by the DPS simulator for
the LU application) arrive over time, and a scheduler decides how many
nodes each running job holds, reallocating on arrivals and departures.
The benches compare static allocation against dynamic-efficiency-aware
policies, quantifying the service-rate gains the paper argues for.
"""

from repro.clusterserver.workload import (
    JobSpec,
    MalleableJob,
    amdahl_efficiency,
    lu_like_job,
    mixed_workload,
    rampup_job,
    stencil_like_job,
    synthetic_workload,
)
from repro.clusterserver.arrivals import (
    ArrivalProcess,
    bursty_arrivals,
    closed_stream,
    diurnal_arrivals,
    poisson_arrivals,
    trace_arrivals,
)
from repro.clusterserver.metrics import SloAggregator, SloSummary
from repro.clusterserver.scheduler import (
    AdaptiveEfficiencyScheduler,
    AdmissionControlScheduler,
    AutoscalingScheduler,
    EquipartitionScheduler,
    FcfsScheduler,
    Scheduler,
    StaticScheduler,
)
from repro.clusterserver.server import ClusterServer, ServerResult
from repro.clusterserver.sharded import JobShard, ShardedServer, ShardStats

__all__ = [
    "JobSpec",
    "MalleableJob",
    "amdahl_efficiency",
    "lu_like_job",
    "stencil_like_job",
    "rampup_job",
    "synthetic_workload",
    "mixed_workload",
    "ArrivalProcess",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "trace_arrivals",
    "closed_stream",
    "SloAggregator",
    "SloSummary",
    "Scheduler",
    "StaticScheduler",
    "FcfsScheduler",
    "EquipartitionScheduler",
    "AdaptiveEfficiencyScheduler",
    "AdmissionControlScheduler",
    "AutoscalingScheduler",
    "ClusterServer",
    "ServerResult",
    "JobShard",
    "ShardedServer",
    "ShardStats",
]
