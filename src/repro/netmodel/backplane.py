"""Star network with a *finite* switch backplane.

The paper assumes "a central full crossbar switch which is never a
bottleneck".  Real entry-level switches of the era were oversubscribed:
their fabric could not carry every port at line rate simultaneously.
This model relaxes the paper's assumption to quantify it — per-node
equal-share rates are computed exactly as in
:class:`~repro.netmodel.star.EqualShareStarNetwork`, then scaled down
proportionally whenever their sum exceeds the backplane capacity.

With ``capacity = math.inf`` the model degrades to the paper's exactly;
the ablation bench sweeps the oversubscription ratio to find where the
"never a bottleneck" assumption starts to matter for the LU workload.

Rate allocation is *incremental* by default.  The per-node equal-share
base rates have single-hop dirty sets (no redistribution), and the shared
backplane couples every flow only through one scalar — the aggregate
demand.  :class:`IncrementalBackplaneAllocator` therefore maintains the
base rates incrementally plus a running demand total; while the fabric is
uncongested each membership change touches only the one-hop dirty set,
and when the scale factor moves, every flow is re-rated (the
shared-backplane component is the whole pool — unavoidable, and exactly
what the full recompute would do).
"""

from __future__ import annotations

import math
from typing import Callable, Collection

from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator
from repro.des.kernel import Kernel
from repro.errors import ConfigurationError
from repro.netmodel.base import NetworkModel, StarFlowAllocator, Transfer
from repro.netmodel.params import NetworkParams

#: Incremental updates between exact recomputations of the demand total
#: (bounds float drift of the running sum; amortized O(n / interval)).
_REBASE_INTERVAL = 1024


class IncrementalBackplaneAllocator(StarFlowAllocator):
    """Equal-share base rates plus a shared-backplane scale factor.

    Maintains, incrementally, every flow's *base* rate (the paper's
    equal-share law) and the aggregate demand ``total = sum(base)``.  The
    assigned rate is ``base * scale`` with
    ``scale = min(1, backplane / total)``.  A membership change re-bases
    only the single-hop dirty set; all flows are re-rated only when the
    scale factor actually moves.  The running total is recomputed exactly
    every ``_REBASE_INTERVAL`` updates so float drift stays far below the
    verify tolerance.
    """

    def __init__(
        self, capacity: float, backplane: float, verify: bool = False
    ) -> None:
        super().__init__(capacity, verify=verify)
        self.backplane = float(backplane)
        self._base: dict[FluidTask, float] = {}
        self._total = 0.0
        self._scale = 1.0
        self._updates_since_rebase = 0

    # ---------------------------------------------------------------- helpers
    def _base_rate(self, task: FluidTask) -> float:
        return self._equal_share_rate(task)

    def _current_scale(self) -> float:
        if self._total > self.backplane:
            return self.backplane / self._total
        return 1.0

    # ------------------------------------------------------------- allocator
    def _full_rates(self, tasks: Collection[FluidTask]) -> None:
        self._base = {}
        total = 0.0
        for task in tasks:
            base = self._base_rate(task)
            self._base[task] = base
            total += base
        self._total = total
        self._updates_since_rebase = 0
        scale = self._current_scale()
        self._scale = scale
        for task in tasks:
            task.rate = self._base[task] * scale

    def _forget(self, task: FluidTask) -> None:
        base = self._base.pop(task, None)
        if base is not None:
            self._total -= base

    def _update_rates(
        self, dirty: Collection[FluidTask], tasks: Collection[FluidTask]
    ) -> int:
        for task in dirty:
            old = self._base.get(task, 0.0)
            base = self._base_rate(task)
            self._base[task] = base
            self._total += base - old
        self._updates_since_rebase += 1
        if self._updates_since_rebase >= _REBASE_INTERVAL:
            # Recompute the running sum exactly; O(n) amortized over the
            # interval, so the per-update cost stays sub-linear.
            self._total = math.fsum(self._base[t] for t in tasks)
            self._updates_since_rebase = 0
        scale = self._current_scale()
        if scale != self._scale:
            # The fabric's congestion level moved: the backplane couples
            # every flow, so every flow is re-rated.
            self._scale = scale
            for task in tasks:
                task.rate = self._base[task] * scale
            return len(tasks)
        for task in dirty:
            task.rate = self._base[task] * scale
        return len(dirty)


class _FullBackplaneAllocator(FullRecomputeAllocator, IncrementalBackplaneAllocator):
    """Full recomputation on every membership change (baseline)."""


class BackplaneStarNetwork(NetworkModel):
    """Equal-share star whose switch fabric carries at most ``capacity`` B/s.

    Parameters
    ----------
    capacity:
        Aggregate backplane throughput in bytes/s.  ``math.inf`` recovers
        the paper's ideal crossbar.
    incremental:
        ``False`` restores full recomputation on every membership change
        (the benchmark baseline).
    verify_incremental:
        Shadow every incremental update with a full recompute and raise on
        divergence (the equivalence-test mode).
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        capacity: float = math.inf,
        incremental: bool = True,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, params)
        if capacity <= 0:
            raise ConfigurationError(
                f"backplane capacity must be positive, got {capacity!r}"
            )
        self.capacity = float(capacity)
        allocator_cls = (
            IncrementalBackplaneAllocator if incremental else _FullBackplaneAllocator
        )
        self.allocator = allocator_cls(
            params.bandwidth, self.capacity, verify=verify_incremental
        )
        self._pool = FluidPool(kernel, self.allocator, name="backplane-network")

    @classmethod
    def factory(
        cls, num_nodes: int, oversubscription: float
    ) -> Callable[[Kernel, NetworkParams], "BackplaneStarNetwork"]:
        """Factory for a fabric carrying ``num_nodes / oversubscription``
        links at line rate (oversubscription 1.0 = non-blocking for
        one-directional traffic; 2.0 = half the ports can stream).
        """
        if oversubscription <= 0:
            raise ConfigurationError("oversubscription must be positive")

        def build(kernel: Kernel, params: NetworkParams) -> "BackplaneStarNetwork":
            capacity = num_nodes * params.bandwidth / oversubscription
            return cls(kernel, params, capacity=capacity)

        return build

    # ------------------------------------------------------------ lifecycle
    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        self._pool.add(FluidTask(transfer.size, self._drain_done, tag=transfer))

    def _drain_done(self, task: FluidTask) -> None:
        self._finish(task.tag)

    # ------------------------------------------------------------- metrics
    def fabric_load(self) -> float:
        """Current aggregate drain rate as a fraction of capacity."""
        if math.isinf(self.capacity):
            return 0.0
        return min(1.0, sum(t.rate for t in self._pool.tasks) / self.capacity)
