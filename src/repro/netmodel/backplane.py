"""Star network with a *finite* switch backplane.

The paper assumes "a central full crossbar switch which is never a
bottleneck".  Real entry-level switches of the era were oversubscribed:
their fabric could not carry every port at line rate simultaneously.
This model relaxes the paper's assumption to quantify it — per-node
equal-share rates are computed exactly as in
:class:`~repro.netmodel.star.EqualShareStarNetwork`, then scaled down
proportionally whenever their sum exceeds the backplane capacity.

With ``capacity = math.inf`` the model degrades to the paper's exactly;
the ablation bench sweeps the oversubscription ratio to find where the
"never a bottleneck" assumption starts to matter for the LU workload.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.des.fluid import FluidPool, FluidTask
from repro.des.kernel import Kernel
from repro.errors import ConfigurationError
from repro.netmodel.base import NetworkModel, Transfer
from repro.netmodel.params import NetworkParams


class BackplaneStarNetwork(NetworkModel):
    """Equal-share star whose switch fabric carries at most ``capacity`` B/s.

    Parameters
    ----------
    capacity:
        Aggregate backplane throughput in bytes/s.  ``math.inf`` recovers
        the paper's ideal crossbar.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        capacity: float = math.inf,
    ) -> None:
        super().__init__(kernel, params)
        if capacity <= 0:
            raise ConfigurationError(
                f"backplane capacity must be positive, got {capacity!r}"
            )
        self.capacity = float(capacity)
        self._pool = FluidPool(kernel, self._allocate, name="backplane-network")
        self._drain_out: dict[int, int] = {}
        self._drain_in: dict[int, int] = {}

    @classmethod
    def factory(
        cls, num_nodes: int, oversubscription: float
    ) -> Callable[[Kernel, NetworkParams], "BackplaneStarNetwork"]:
        """Factory for a fabric carrying ``num_nodes / oversubscription``
        links at line rate (oversubscription 1.0 = non-blocking for
        one-directional traffic; 2.0 = half the ports can stream).
        """
        if oversubscription <= 0:
            raise ConfigurationError("oversubscription must be positive")

        def build(kernel: Kernel, params: NetworkParams) -> "BackplaneStarNetwork":
            capacity = num_nodes * params.bandwidth / oversubscription
            return cls(kernel, params, capacity=capacity)

        return build

    # ------------------------------------------------------------ lifecycle
    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        self._drain_out[transfer.src] = self._drain_out.get(transfer.src, 0) + 1
        self._drain_in[transfer.dst] = self._drain_in.get(transfer.dst, 0) + 1
        self._pool.add(FluidTask(transfer.size, self._drain_done, tag=transfer))

    def _drain_done(self, task: FluidTask) -> None:
        transfer: Transfer = task.tag
        self._drain_out[transfer.src] -= 1
        self._drain_in[transfer.dst] -= 1
        self._finish(transfer)

    # ------------------------------------------------------------ allocator
    def _allocate(self, tasks: list[FluidTask]) -> None:
        bandwidth = self.params.bandwidth
        total = 0.0
        for task in tasks:
            transfer: Transfer = task.tag
            out_share = bandwidth / self._drain_out[transfer.src]
            in_share = bandwidth / self._drain_in[transfer.dst]
            task.rate = min(out_share, in_share)
            total += task.rate
        if total > self.capacity:
            scale = self.capacity / total
            for task in tasks:
                task.rate *= scale

    # ------------------------------------------------------------- metrics
    def fabric_load(self) -> float:
        """Current aggregate drain rate as a fraction of capacity."""
        if math.isinf(self.capacity):
            return 0.0
        return min(1.0, sum(t.rate for t in self._pool.tasks) / self.capacity)
