"""Structure-of-arrays network backends: vectorized star-topology models.

These are the numpy counterparts of :class:`~repro.netmodel.maxmin.MaxMinStarNetwork`,
:class:`~repro.netmodel.packet.PacketNetwork` and
:class:`~repro.netmodel.star.EqualShareStarNetwork`, built on
:class:`~repro.des.soa.SoaFluidEngine` — one fused engine per model that
holds flows as rows of parallel arrays (remaining bytes, rate, link
membership as index arrays, frozen fair share, saturation-round index) and
runs both the fluid bookkeeping and the rate solve as masked array
operations.

The max-min engine warm-starts from the *saturation order* of the previous
solve (the sequence of bottleneck links), vectorizing the water-fill rounds
away entirely:

* given a candidate bottleneck order, every flow's round is the earlier of
  its two links' positions, and the round shares satisfy one *lower
  triangular* linear system (each bottleneck's capacity is exhausted by
  its own round plus the flows it loses to earlier rounds) — solved in a
  single vectorized triangular solve instead of sequential rounds;
* the candidate is then *certified* by one ``(links x rounds)`` masked
  matrix check: no link with unfrozen flows may undercut any round's
  share (the same ``1 - 1e-9`` tolerance as the scalar warm replay).  A
  certified order reproduces max-min exactly — an undercutting link would
  have had to freeze below its certified round, which the check excludes;
* on a membership change the previous order (minus emptied rounds, plus
  new links appended) usually certifies directly or after re-sorting
  rounds by their computed shares; a handful of sort-and-resolve repairs
  cover bottleneck reorderings, and anything still uncertified falls back
  to the scalar solver (counted in ``full_fallbacks``, like every warm
  miss).

Because certification is sufficient for exactness, the fast path never
trades accuracy for speed: the ``verify_incremental`` shadow re-solves
with the scalar :func:`~repro.netmodel.waterfill.maxmin_solve` and
enforces 1e-9 agreement, and the fallback *is* the scalar solver.  The
equivalence contract is documented in ``docs/allocator_protocol.md``.

Constructing any of these models without numpy raises
:class:`~repro.errors.ConfigurationError`; the scenario registry
(``scenario/builtins.py``) instead falls back to the scalar model with a
one-line hint, so specs naming ``maxmin-soa`` etc. still run everywhere.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.des.soa import SoaFluidEngine, np
from repro.des.kernel import Kernel

if np is not None:
    try:
        # The raw LAPACK triangular solve: ~5x less call overhead than
        # scipy.linalg.solve_triangular at water-fill sizes (tens of rounds).
        from scipy.linalg.lapack import dtrtrs as _dtrtrs
    except ImportError:  # pragma: no cover - scipy genuinely optional
        _dtrtrs = None
else:  # pragma: no cover - numpy-less environments never solve
    _dtrtrs = None


def _tri_solve(B: Any, rhs: Any) -> Any:
    """Solve the lower-triangular round system ``B @ s = rhs``."""
    if _dtrtrs is not None:
        s, info = _dtrtrs(B, rhs, lower=1)
        if info == 0:
            return s
    return np.linalg.solve(B, rhs)
from repro.errors import SimulationError
from repro.netmodel.base import _WARM_RTOL, NetworkModel, Transfer
from repro.netmodel.packet import PacketNetworkParams
from repro.netmodel.params import NetworkParams
from repro.netmodel.waterfill import maxmin_solve

#: Verify-shadow tolerance, matching ``RateAllocator._verify_equivalence``.
_VERIFY_RTOL = 1e-9


class _StarSoaEngine(SoaFluidEngine):
    """Shared star-topology geometry: two link ids and a factor per flow.

    Links ("out" of the source, "in" to the destination) live in one
    combined integer id space; ``link_total`` tracks live flows per link.
    ``factor`` is a per-flow constant rate multiplier (the packet model's
    seeded throughput factor; 1.0 elsewhere) applied on top of the fair
    share, which keeps every warm-start argument intact because the fair
    shares themselves are factor-free.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        on_complete,
        capacity: float,
        verify: bool = False,
    ) -> None:
        super().__init__(kernel, name, on_complete, verify=verify)
        self.capacity = float(capacity)
        n = self.work.shape[0]
        self.out_l = np.zeros(n, dtype=np.int64)
        self.in_l = np.zeros(n, dtype=np.int64)
        self.factor = np.ones(n)
        self.fair = np.zeros(n)
        self._link_ids: dict[tuple[int, int], int] = {}
        self.link_total = np.zeros(16, dtype=np.int64)

    def _grow_slots(self, old: int, new: int) -> None:
        for attr, one in (("out_l", 0), ("in_l", 0), ("factor", 1), ("fair", 0)):
            src = getattr(self, attr)
            arr = (
                np.zeros(new, dtype=src.dtype)
                if not one
                else np.ones(new, dtype=src.dtype)
            )
            arr[:old] = src
            setattr(self, attr, arr)

    def _link_id(self, kind: int, node: int) -> int:
        key = (kind, node)
        lid = self._link_ids.get(key)
        if lid is None:
            lid = len(self._link_ids)
            self._link_ids[key] = lid
            if lid >= self.link_total.shape[0]:
                grown = np.zeros(self.link_total.shape[0] * 2, dtype=np.int64)
                grown[: self.link_total.shape[0]] = self.link_total
                self.link_total = grown
        return lid

    def add_flow(
        self, work: float, src: int, dst: int, tag: Any, factor: float = 1.0
    ) -> int:
        """Admit a flow crossing ``("out", src)`` and ``("in", dst)``."""
        slot = self._admit(work, tag)
        if slot < 0:
            return slot
        self.out_l[slot] = self._link_id(0, src)
        self.in_l[slot] = self._link_id(1, dst)
        self.factor[slot] = factor
        self.fair[slot] = 0.0
        self._added.append(slot)
        self._solve_pending()
        return slot

    def _apply_delta(
        self, added: list[int], removed: list[int]
    ) -> list[int]:
        """Update live link membership counts; returns the affected links."""
        affected: dict[int, None] = {}
        lt = self.link_total
        for slot in removed:
            a = int(self.out_l[slot])
            b = int(self.in_l[slot])
            lt[a] -= 1
            lt[b] -= 1
            affected[a] = None
            affected[b] = None
        for slot in added:
            a = int(self.out_l[slot])
            b = int(self.in_l[slot])
            lt[a] += 1
            lt[b] += 1
            affected[a] = None
            affected[b] = None
        return list(affected)

    def _live_flows(self):
        """(live slot indices, out link ids, in link ids) of active flows."""
        live_idx = np.flatnonzero(self.live)
        return live_idx, self.out_l[live_idx], self.in_l[live_idx]

    def _solve_refresh(self, hint: Any) -> None:
        # Star networks have no external rate coupling; nothing to refresh.
        pass


class _MaxMinSoaEngine(_StarSoaEngine):
    """Vectorized incremental max-min water-filling (see module docstring)."""

    #: total solve attempts per update (the first on the predicted order,
    #: the rest on repair re-sorts) before the scalar fallback
    _MAX_ATTEMPTS = 10

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        n = self.work.shape[0]
        #: round each slot froze in at the last accepted solve
        self._slot_round = np.zeros(n, dtype=np.int64)
        #: cached saturation order from the last accepted solve: the
        #: bottleneck link ids, first-frozen first (``None`` = cold)
        self._order: Optional[Any] = None
        #: round shares / frozen-flow counts / link -> position, aligned
        #: with ``_order`` (the data the share predictor works from)
        self._s: Optional[Any] = None
        self._cnt: Optional[Any] = None
        self._posL: Optional[Any] = None
        #: scratch buffers for the attempt loop, grown on demand
        self._ar = np.arange(64, dtype=np.int64)
        self._posbuf = np.empty(0, dtype=np.int64)
        self._rhsbuf = np.empty(0)

    def _grow_slots(self, old: int, new: int) -> None:
        super()._grow_slots(old, new)
        sr = np.zeros(new, dtype=np.int64)
        sr[:old] = self._slot_round
        self._slot_round = sr

    # ------------------------------------------------------------- allocator
    def _solve_update(self, added: list[int], removed: list[int]) -> None:
        self._apply_delta(added, removed)
        if self._nlive == 0:
            # The cached order references links that may all be empty now.
            self._order = None
            return
        if self._order is None or not self._candidate_solve(added, removed):
            self._full_solve(fallback=True)

    def _full_solve(self, fallback: bool) -> None:
        """Scalar reference solve + cache rebuild (fallback path)."""
        live_idx, out, inn = self._live_flows()
        if fallback:
            self.stats.full_fallbacks += 1
            self.stats.rates_computed += live_idx.size
        # The combined link-id space doubles as pseudo node ids: the solver
        # forms ("out", out_id) / ("in", in_id) links, which are in
        # bijection with this engine's links.
        solution = maxmin_solve(
            list(zip(out.tolist(), inn.tolist())), self.capacity
        )
        fair = np.asarray(solution.rates)
        self.fair[live_idx] = fair
        self.rate[live_idx] = fair * self.factor[live_idx]
        rounds = solution.rounds
        R = len(rounds)
        order = np.empty(R, dtype=np.int64)
        s = np.empty(R)
        cnt = np.empty(R, dtype=np.int64)
        for k, (link, share, indices) in enumerate(rounds):
            order[k] = link[1]
            s[k] = share
            cnt[k] = len(indices)
            members = np.fromiter(indices, dtype=np.int64, count=len(indices))
            self._slot_round[live_idx[members]] = k
        self._cache(order, s, cnt)

    def _cache(self, order: Any, s: Any, cnt: Any) -> None:
        self._order = order
        self._s = s
        self._cnt = cnt
        posL = np.full(len(self._link_ids), -1, dtype=np.int64)
        posL[order] = np.arange(order.shape[0], dtype=np.int64)
        self._posL = posL

    def _link_pos(self, link: int) -> int:
        posL = self._posL
        return int(posL[link]) if link < posL.shape[0] else -1

    def _predict_order(self, added: list[int], removed: list[int]):
        """Reposition the delta's links by locally predicted freeze shares.

        A removed flow either leaves its link's own round (same residual
        over one fewer flow) or frees its earlier-frozen rate into the
        link's pool; an added flow joins the round (same residual over one
        more).  The predictions ignore cross-link cascades — they only
        pick the candidate positions, and certification vets the result.
        Returns ``(candidate order, inserted-new-link flag)``.
        """
        order, s, cnt, cap = self._order, self._s, self._cnt, self.capacity
        lt = self.link_total
        state: dict[int, list] = {}

        def seed(link: int) -> list:
            st = state.get(link)
            if st is None:
                k = self._link_pos(link)
                if k >= 0:
                    st = [float(s[k]), int(cnt[k]), k]
                else:
                    # Not a bottleneck last time (or brand new): predict
                    # from the isolated-link share over the post-delta
                    # membership, and skip the per-flow adjustments below.
                    st = [cap / max(int(lt[link]), 1), 0, -1]
                state[link] = st
            return st

        for f in removed:
            j = int(self._slot_round[f])
            freed = float(s[j]) if j < s.shape[0] else 0.0
            for link in (int(self.out_l[f]), int(self.in_l[f])):
                st = seed(link)
                if st[2] < 0:
                    continue
                if j < st[2]:
                    st[0] += freed / max(st[1], 1)
                elif st[1] > 1:
                    st[0] *= st[1] / (st[1] - 1)
                    st[1] -= 1
                else:
                    st[1] = 0
        for f in added:
            for link in (int(self.out_l[f]), int(self.in_l[f])):
                st = seed(link)
                if st[2] < 0:
                    continue
                if st[1] > 0:
                    st[0] *= st[1] / (st[1] + 1)
                st[1] += 1
        keepmask = np.ones(order.shape[0], dtype=bool)
        links_py = []
        vals_py = []
        inserted_new = False
        for link, st in state.items():
            if st[2] >= 0:
                keepmask[st[2]] = False
            else:
                inserted_new = True
            links_py.append(link)
            vals_py.append(st[0])
        keys = np.concatenate((s[keepmask], np.asarray(vals_py)))
        cand = np.concatenate(
            (order[keepmask], np.asarray(links_py, dtype=np.int64))
        )
        return cand[keys.argsort(kind="stable")], inserted_new

    def _candidate_solve(self, added: list[int], removed: list[int]) -> bool:
        """Solve against a predicted saturation order; certify or repair.

        Each attempt solves the lower-triangular round system for the
        candidate order, then certifies the result with the max-min
        optimality conditions (every bottleneck row is saturated by
        construction, so the allocation is max-min iff shares are
        non-negative, no flow outrates a later-frozen link it crosses, and
        no non-bottleneck link is pushed over capacity).  An uncertified
        candidate is repaired by re-sorting every member-bearing link on
        its implied freeze share.  Returns ``False`` (caller pays the
        accounted scalar fallback) if nothing certifies within
        ``_MAX_ATTEMPTS``.
        """
        cap = self.capacity
        live_idx, out, inn = self._live_flows()
        L = len(self._link_ids)
        if len(added) + len(removed) <= 8:
            order, inserted_new = self._predict_order(added, removed)
        else:
            # Bulk delta: cached order plus any unseen live links, appended
            # in link-id (= registration) order.
            touched = np.zeros(L, dtype=bool)
            touched[out] = True
            touched[inn] = True
            in_cached = np.zeros(L, dtype=bool)
            in_cached[self._order] = True
            new_links = np.flatnonzero(touched & ~in_cached)
            inserted_new = bool(new_links.size)
            order = (
                np.concatenate((self._order, new_links))
                if new_links.size
                else self._order
            )
        if self._ar.shape[0] < L + 1:
            self._ar = np.arange(max(L + 1, 2 * self._ar.shape[0]), dtype=np.int64)
        if self._posbuf.shape[0] < L:
            self._posbuf = np.empty(L, dtype=np.int64)
            self._rhsbuf = np.full(L, float(self.capacity))
        ar = self._ar
        both = None
        for attempt in range(self._MAX_ATTEMPTS):
            R0 = order.shape[0]
            if R0 == 0:  # pragma: no cover - live flows imply live links
                return False
            # Flow round = the earlier of its two links' positions; links
            # absent from the order park at position R0, which only ever
            # loses the min (every flow's first-freezing link is present).
            posL = self._posbuf
            posL[:] = R0
            posL[order] = ar[:R0]
            p_out = posL[out]
            p_in = posL[inn]
            r_f = np.minimum(p_out, p_in)
            other = np.maximum(p_out, p_in)
            # Compress empty rounds so the system is square and regular.
            cnt0 = np.bincount(r_f, minlength=R0)
            if cnt0.shape[0] > R0:  # pragma: no cover - drift guard
                return False
            nz = cnt0 > 0
            newidx = nz.cumsum() - 1
            rr = newidx[r_f]
            sub = order[nz]
            cnt = cnt0[nz]
            Rp = sub.shape[0]
            # Lower-triangular system: bottleneck k's capacity is consumed
            # by its own round (cnt_k flows at share s_k) plus each member
            # frozen by an earlier bottleneck (share s_{rr_f}).
            ext_nz = np.zeros(R0 + 1, dtype=bool)
            ext_nz[:R0] = nz
            keep = ext_nz[other]
            rows = newidx[other[keep]]
            cols = rr[keep]
            B = (
                np.bincount(rows * Rp + cols, minlength=Rp * Rp)
                .reshape(Rp, Rp)
                .astype(np.float64)
            )
            diag = ar[:Rp]
            B[diag, diag] += cnt
            s = _tri_solve(B, self._rhsbuf[:Rp])
            # Certification: shares non-negative, and no flow's rate
            # exceeds the share of the later-frozen link it crosses (the
            # bottleneck condition, with the scalar replay's 1e-9 slack).
            fair = None
            ok = float(s.min()) >= 0.0 and not (
                s[cols] > s[rows] * (1.0 + _WARM_RTOL)
            ).any()
            if ok:
                fair = s[rr]
                if not keep.all():
                    # Some flow's second link is not a bottleneck: it must
                    # not be pushed over capacity (bottleneck rows sit at
                    # exactly ``cap`` by construction).
                    if both is None:
                        both = np.concatenate((out, inn))
                    load = np.bincount(
                        both,
                        weights=np.concatenate((fair, fair)),
                        minlength=L,
                    )
                    ok = not (load > cap * (1.0 + _WARM_RTOL) + 1e-12).any()
            if ok:
                self.fair[live_idx] = fair
                self.rate[live_idx] = fair * self.factor[live_idx]
                self.stats.warm_starts += 1
                if inserted_new:
                    self.stats.warm_inserts += 1
                self.stats.rates_computed += live_idx.size
                self._slot_round[live_idx] = rr
                self._cache(sub, s, cnt)
                return True
            if attempt == self._MAX_ATTEMPTS - 1:
                return False
            # Repair: re-sort every member-bearing link on its implied
            # freeze share — the round share for current bottlenecks,
            # tightened by the residual-over-unfrozen ratio wherever the
            # link undercuts a round it still has members in.
            if both is None:
                both = np.concatenate((out, inn))
            rboth = np.concatenate((rr, rr))
            flat = both * Rp + rboth
            cntM = np.bincount(flat, minlength=L * Rp).reshape(L, Rp)
            # Every flow frozen in round k carries rate s_k exactly, so the
            # consumption matrix is the count matrix scaled per column.
            conM = cntM * s[None, :]
            cumcnt = cntM.cumsum(axis=1)
            cumcon = conM.cumsum(axis=1)
            # Exclusive (strictly-before-round-k) sums via inclusive minus
            # the at-k column.
            unfrozen = cumcnt[:, -1:] - (cumcnt - cntM)
            residual = cap - (cumcon - conM)
            badM = (unfrozen > 0) & (
                residual < s[None, :] * (1.0 - _WARM_RTOL) * unfrozen
            )
            ratio = np.where(badM, residual / np.maximum(unfrozen, 1), np.inf)
            v = ratio.min(axis=1)
            # Current bottlenecks re-sort on their round share, pulled up to
            # the largest rate any of their flows carries (a saturated link
            # freezes exactly at its maximal member rate, so outrate
            # violations push the link later instead of lingering).
            mr = s.copy()
            np.maximum.at(mr, rows, s[cols])
            v[sub] = np.minimum(v[sub], mr)
            links = np.flatnonzero(cumcnt[:, -1] > 0)
            order = links[v[links].argsort(kind="stable")]
        return False  # pragma: no cover - loop exits via the guard above

    def _verify_full(self) -> None:
        """Shadow the incremental state with the scalar reference solver."""
        live_idx, out, inn = self._live_flows()
        solution = maxmin_solve(
            list(zip(out.tolist(), inn.tolist())), self.capacity
        )
        expected = np.asarray(solution.rates) * self.factor[live_idx]
        got = self.rate[live_idx]
        scale = np.maximum(np.maximum(np.abs(expected), np.abs(got)), 1.0)
        bad = np.abs(expected - got) > _VERIFY_RTOL * scale
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise SimulationError(
                f"engine {self.name!r}: incremental SoA rate diverged from "
                f"the reference solve (flow {i}: {got[i]!r} != {expected[i]!r})"
            )


class _EqualShareSoaEngine(_StarSoaEngine):
    """Vectorized equal-share law: ``min(B/n_out(src), B/n_in(dst))``.

    No redistribution means no saturation order: every solve recomputes
    the whole live vector (two gathers and a minimum — cheaper than
    tracking the one-hop dirty set in Python).
    """

    def _solve_update(self, added: list[int], removed: list[int]) -> None:
        self._apply_delta(added, removed)
        if self._nlive:
            self._rerate()

    def _rerate(self) -> None:
        live_idx, out, inn = self._live_flows()
        lt = self.link_total
        fair = np.minimum(
            self.capacity / lt[out], self.capacity / lt[inn]
        )
        new = fair * self.factor[live_idx]
        self.stats.rates_computed += int(
            np.count_nonzero(new != self.rate[live_idx])
        )
        self.fair[live_idx] = fair
        self.rate[live_idx] = new

    def _verify_full(self) -> None:
        live_idx, out, inn = self._live_flows()
        L = len(self._link_ids)
        counts = np.bincount(np.concatenate((out, inn)), minlength=L)
        if not np.array_equal(counts, self.link_total[:L]):
            raise SimulationError(
                f"engine {self.name!r}: link membership counts diverged"
            )
        expected = (
            np.minimum(self.capacity / counts[out], self.capacity / counts[inn])
            * self.factor[live_idx]
        )
        got = self.rate[live_idx]
        scale = np.maximum(np.maximum(np.abs(expected), np.abs(got)), 1.0)
        if np.any(np.abs(expected - got) > _VERIFY_RTOL * scale):
            raise SimulationError(
                f"engine {self.name!r}: equal-share rates diverged from law"
            )


# --------------------------------------------------------------------------
# model front-ends
# --------------------------------------------------------------------------


class MaxMinStarNetworkSoA(NetworkModel):
    """SoA backend of :class:`~repro.netmodel.maxmin.MaxMinStarNetwork`.

    Same topology, same rates (max-min water-filling with warm-started
    incremental re-solves), same observability; the per-flow state lives in
    numpy arrays instead of Python objects.  ``verify_incremental=True``
    shadows every solve with the scalar reference solver.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, params)
        self._pool = _MaxMinSoaEngine(
            kernel,
            "maxmin-soa-network",
            self._drain_done,
            params.bandwidth,
            verify=verify_incremental,
        )
        #: allocator-protocol stats surface (``RunRecord`` model metrics)
        self.allocator = self._pool

    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        self._pool.add_flow(transfer.size, transfer.src, transfer.dst, transfer)

    def _drain_done(self, transfer: Transfer) -> None:
        self._finish(transfer)


class PacketNetworkSoA(NetworkModel):
    """SoA backend of :class:`~repro.netmodel.packet.PacketNetwork`.

    Replays the scalar model's chunking, ramp-up folding and seeded noise
    draw-for-draw (same RNG stream, same draw order), so the same seed
    produces the same testbed "measurements" on either backend; the seeded
    throughput factor becomes the engine's per-flow ``factor``.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        packet_params: PacketNetworkParams | None = None,
        seed: int = 0,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, params)
        # Imported lazily-by-module: util.rng needs numpy, which the SoA
        # backend requires anyway.
        from repro.util.rng import SeedSequenceFactory

        self.packet_params = packet_params or PacketNetworkParams()
        self._rng = SeedSequenceFactory(seed).rng("packet-network")
        self._pool = _MaxMinSoaEngine(
            kernel,
            "packet-soa-network",
            self._drain_done,
            params.bandwidth,
            verify=verify_incremental,
        )
        self.allocator = self._pool

    def _start(self, transfer: Transfer) -> None:
        pp = self.packet_params
        jitter = 1.0 + pp.latency_jitter * float(self._rng.standard_normal())
        delay = self.params.effective_latency * max(0.2, jitter)
        self.kernel.schedule(delay, self._begin_drain, transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        pp = self.packet_params
        chunks = max(1, -(-int(transfer.size) // pp.mtu)) if transfer.size else 0
        work = transfer.size + chunks * pp.per_chunk_cost
        ramped = min(work, float(pp.ramp_bytes))
        work += ramped * (1.0 / pp.ramp_factor - 1.0)
        throughput = 1.0 + pp.rate_jitter * float(self._rng.standard_normal())
        throughput = min(1.0, max(0.5, throughput))
        self._pool.add_flow(
            work, transfer.src, transfer.dst, transfer, factor=throughput
        )

    def _drain_done(self, transfer: Transfer) -> None:
        self._finish(transfer)


class EqualShareStarNetworkSoA(NetworkModel):
    """SoA backend of :class:`~repro.netmodel.star.EqualShareStarNetwork`.

    The paper's equal-share law over numpy arrays.  Keeps the scalar
    model's draining-transfer metrics (``draining_outgoing`` /
    ``draining_incoming``) so diagnostics read both backends identically.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, params)
        self._pool = _EqualShareSoaEngine(
            kernel,
            "star-soa-network",
            self._drain_done,
            params.bandwidth,
            verify=verify_incremental,
        )
        self.allocator = self._pool
        self._drain_out: dict[int, int] = {}
        self._drain_in: dict[int, int] = {}

    def draining_outgoing(self, node: int) -> int:
        """Transfers of ``node`` currently draining (post-latency)."""
        return self._drain_out.get(node, 0)

    def draining_incoming(self, node: int) -> int:
        """Transfers into ``node`` currently draining (post-latency)."""
        return self._drain_in.get(node, 0)

    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        self._drain_out[transfer.src] = self._drain_out.get(transfer.src, 0) + 1
        self._drain_in[transfer.dst] = self._drain_in.get(transfer.dst, 0) + 1
        self._pool.add_flow(transfer.size, transfer.src, transfer.dst, transfer)

    def _drain_done(self, transfer: Transfer) -> None:
        self._drain_out[transfer.src] -= 1
        self._drain_in[transfer.dst] -= 1
        self._finish(transfer)
