"""Platform-specific network parameters.

The paper's model needs only a latency ``l`` and a bandwidth ``b`` that are
"constant and specific to the hardware onto which the parallel application
is running" and are characterized once per machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import MICROSECOND, mbit_per_s
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class NetworkParams:
    """Latency/bandwidth description of a cluster interconnect.

    Parameters
    ----------
    latency:
        One-way message latency ``l`` in seconds.
    bandwidth:
        Link bandwidth ``b`` in bytes/second.  Links are full duplex: the
        same bandwidth is available independently in each direction.
    per_object_overhead:
        Fixed software overhead per transferred data object (serialization,
        queue management) in seconds, charged in addition to ``l``.  The
        paper folds this into its measured latency; it is exposed separately
        so calibration experiments can isolate it.
    """

    latency: float = 80 * MICROSECOND
    bandwidth: float = mbit_per_s(100.0)
    per_object_overhead: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("latency", self.latency)
        check_positive("bandwidth", self.bandwidth)
        check_non_negative("per_object_overhead", self.per_object_overhead)

    @property
    def effective_latency(self) -> float:
        """Total per-object fixed cost: latency plus software overhead."""
        return self.latency + self.per_object_overhead

    def uncontended_time(self, size: float) -> float:
        """The paper's formula ``t = l + s/b`` for a single transfer."""
        check_non_negative("size", size)
        return self.effective_latency + size / self.bandwidth


#: Fast Ethernet parameters matching the paper's evaluation platform
#: (100 Mb/s switched network between Sun workstations).  The effective
#: bandwidth accounts for TCP/IP framing overhead (~93% of line rate), and
#: the latency matches typical Fast Ethernet round-trip/2 measurements.
FAST_ETHERNET = NetworkParams(
    latency=75 * MICROSECOND,
    bandwidth=mbit_per_s(93.0),
    per_object_overhead=60 * MICROSECOND,
)

#: Gigabit Ethernet, used by what-if examples ("evaluate the benefits of a
#: faster network" — paper section 4).
GIGABIT_ETHERNET = NetworkParams(
    latency=40 * MICROSECOND,
    bandwidth=mbit_per_s(930.0),
    per_object_overhead=30 * MICROSECOND,
)
