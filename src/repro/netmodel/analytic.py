"""Contention-free analytic network model.

Every transfer completes after exactly ``l + s/b`` regardless of what else
is in flight.  This is the assumption of the simulators the paper contrasts
itself with ("assume that network contention is inexistent" — MPI-SIM,
COMPASS) and serves as the ablation baseline for the contention benches.
"""

from __future__ import annotations

from repro.netmodel.base import NetworkModel, Transfer


class AnalyticNetwork(NetworkModel):
    """``t = l + s/b`` with no interaction between concurrent transfers."""

    def _start(self, transfer: Transfer) -> None:
        duration = self.params.uncontended_time(transfer.size)
        self.kernel.schedule(duration, self._finish, transfer)
