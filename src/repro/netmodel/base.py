"""Abstract network-model interface shared by all implementations.

A network model accepts *transfers* (source node, destination node, size)
and invokes a completion callback when the last byte arrives.  It also
exposes per-node concurrent-transfer counts, which the CPU model consumes
("the consumed processing power depends on the number of outgoing and
incoming communications" — paper section 4), and notifies listeners whenever
those counts change.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.params import NetworkParams
from repro.util.validation import check_non_negative

#: Callback type invoked when a transfer completes.
CompletionCallback = Callable[["Transfer"], None]
#: Listener invoked whenever any node's concurrent-transfer counts change;
#: receives the nodes whose counts changed (or ``None`` for "unknown"), so
#: incremental CPU allocators can bound their rate refresh to those nodes.
ActivityListener = Callable[[Optional[tuple[int, ...]]], None]


class Transfer:
    """One data-object transfer moving through a network model."""

    __slots__ = (
        "transfer_id",
        "src",
        "dst",
        "size",
        "on_complete",
        "tag",
        "submitted_at",
        "completed_at",
    )

    _ids = itertools.count()

    def __init__(
        self,
        src: int,
        dst: int,
        size: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> None:
        if src == dst:
            raise SimulationError(
                f"transfer source and destination are the same node ({src}); "
                "local deliveries must bypass the network model"
            )
        self.transfer_id = next(Transfer._ids)
        self.src = int(src)
        self.dst = int(dst)
        self.size = check_non_negative("size", size)
        self.on_complete = on_complete
        self.tag = tag
        self.submitted_at: float = math.nan
        self.completed_at: float = math.nan

    @property
    def elapsed(self) -> float:
        """Wall (simulated) duration of the transfer, NaN until complete."""
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Transfer(#{self.transfer_id} {self.src}->{self.dst}, "
            f"size={self.size!r})"
        )


class NetworkModel(ABC):
    """Common bookkeeping for network models: counts, listeners, stats."""

    def __init__(self, kernel: Kernel, params: NetworkParams) -> None:
        self.kernel = kernel
        self.params = params
        self._outgoing: dict[int, int] = {}
        self._incoming: dict[int, int] = {}
        self._listeners: list[ActivityListener] = []
        #: total transfers completed (simulation-cost metric)
        self.completed_transfers = 0
        #: total bytes delivered
        self.delivered_bytes = 0.0

    # ----------------------------------------------------------------- api
    def submit(
        self,
        src: int,
        dst: int,
        size: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> Transfer:
        """Admit a transfer; the callback fires when the last byte arrives."""
        transfer = Transfer(src, dst, size, on_complete, tag)
        transfer.submitted_at = self.kernel.now
        self._outgoing[src] = self._outgoing.get(src, 0) + 1
        self._incoming[dst] = self._incoming.get(dst, 0) + 1
        self._start(transfer)
        self._notify((src, dst))
        return transfer

    def concurrent_outgoing(self, node: int) -> int:
        """Number of in-flight transfers leaving ``node``."""
        return self._outgoing.get(node, 0)

    def concurrent_incoming(self, node: int) -> int:
        """Number of in-flight transfers arriving at ``node``."""
        return self._incoming.get(node, 0)

    def active_transfers(self) -> int:
        """Total number of in-flight transfers."""
        return sum(self._outgoing.values())

    def add_listener(self, listener: ActivityListener) -> None:
        """Subscribe to concurrency-count changes (CPU-model coupling)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------ subclass
    @abstractmethod
    def _start(self, transfer: Transfer) -> None:
        """Begin moving ``transfer``; must eventually call :meth:`_finish`."""

    # ------------------------------------------------------------ internals
    def _finish(self, transfer: Transfer) -> None:
        """Mark ``transfer`` complete and invoke its callback."""
        transfer.completed_at = self.kernel.now
        self._outgoing[transfer.src] -= 1
        self._incoming[transfer.dst] -= 1
        self.completed_transfers += 1
        self.delivered_bytes += transfer.size
        transfer.on_complete(transfer)
        self._notify((transfer.src, transfer.dst))

    def _notify(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        for listener in self._listeners:
            listener(nodes)
