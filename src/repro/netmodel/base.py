"""Abstract network-model interface shared by all implementations.

A network model accepts *transfers* (source node, destination node, size)
and invokes a completion callback when the last byte arrives.  It also
exposes per-node concurrent-transfer counts, which the CPU model consumes
("the consumed processing power depends on the number of outgoing and
incoming communications" — paper section 4), and notifies listeners whenever
those counts change.

This module also hosts the two shared incremental-allocator geometries of
the star topology (see the allocator protocol in :mod:`repro.des.fluid`):

* :class:`StarFlowAllocator` — per-node egress/ingress indices with
  *single-hop* dirty sets, for sharing laws without redistribution (the
  paper's equal-share law, the finite-backplane variant);
* :class:`LinkComponentAllocator` — a link → flows index plus BFS over
  connected components of the bipartite flow/link graph, with a
  warm-started re-solve for cascades that swallow the pool (max-min
  water-filling, the packet-level testbed model).

Concrete models subclass one of these and implement only the rate law.
The dirty-set contract lives in ``docs/allocator_protocol.md`` (including
the warm-start invariants); the complexity story in
``docs/performance.md``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from abc import ABC, abstractmethod
from typing import Any, Callable, Collection, Optional, Sequence

from repro.des.fluid import FluidTask, RateAllocator, pool_horizon_stats
from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.params import NetworkParams
from repro.netmodel.waterfill import Link, MaxMinSolution, maxmin_solve
from repro.util.validation import check_non_negative

#: Callback type invoked when a transfer completes.
CompletionCallback = Callable[["Transfer"], None]
#: Listener invoked whenever any node's concurrent-transfer counts change;
#: receives the nodes whose counts changed (or ``None`` for "unknown"), so
#: incremental CPU allocators can bound their rate refresh to those nodes.
ActivityListener = Callable[[Optional[tuple[int, ...]]], None]


class Transfer:
    """One data-object transfer moving through a network model."""

    __slots__ = (
        "transfer_id",
        "src",
        "dst",
        "size",
        "on_complete",
        "tag",
        "submitted_at",
        "completed_at",
    )

    _ids = itertools.count()

    def __init__(
        self,
        src: int,
        dst: int,
        size: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> None:
        if src == dst:
            raise SimulationError(
                f"transfer source and destination are the same node ({src}); "
                "local deliveries must bypass the network model"
            )
        self.transfer_id = next(Transfer._ids)
        self.src = int(src)
        self.dst = int(dst)
        self.size = check_non_negative("size", size)
        self.on_complete = on_complete
        self.tag = tag
        self.submitted_at: float = math.nan
        self.completed_at: float = math.nan

    @property
    def elapsed(self) -> float:
        """Wall (simulated) duration of the transfer, NaN until complete."""
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Transfer(#{self.transfer_id} {self.src}->{self.dst}, "
            f"size={self.size!r})"
        )


class NetworkModel(ABC):
    """Common bookkeeping for network models: counts, listeners, stats."""

    def __init__(self, kernel: Kernel, params: NetworkParams) -> None:
        self.kernel = kernel
        self.params = params
        self._outgoing: dict[int, int] = {}
        self._incoming: dict[int, int] = {}
        self._listeners: list[ActivityListener] = []
        #: total transfers completed (simulation-cost metric)
        self.completed_transfers = 0
        #: total bytes delivered
        self.delivered_bytes = 0.0

    # ----------------------------------------------------------------- api
    def submit(
        self,
        src: int,
        dst: int,
        size: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> Transfer:
        """Admit a transfer; the callback fires when the last byte arrives."""
        transfer = Transfer(src, dst, size, on_complete, tag)
        transfer.submitted_at = self.kernel.now
        self._outgoing[src] = self._outgoing.get(src, 0) + 1
        self._incoming[dst] = self._incoming.get(dst, 0) + 1
        self._start(transfer)
        self._notify((src, dst))
        return transfer

    def concurrent_outgoing(self, node: int) -> int:
        """Number of in-flight transfers leaving ``node``."""
        return self._outgoing.get(node, 0)

    def concurrent_incoming(self, node: int) -> int:
        """Number of in-flight transfers arriving at ``node``."""
        return self._incoming.get(node, 0)

    def active_transfers(self) -> int:
        """Total number of in-flight transfers."""
        return sum(self._outgoing.values())

    def add_listener(self, listener: ActivityListener) -> None:
        """Subscribe to concurrency-count changes (CPU-model coupling)."""
        self._listeners.append(listener)

    @property
    def horizon_stats(self):
        """Completion-horizon counters of the backing pool (None if none)."""
        return pool_horizon_stats(self)

    # ------------------------------------------------------------ subclass
    @abstractmethod
    def _start(self, transfer: Transfer) -> None:
        """Begin moving ``transfer``; must eventually call :meth:`_finish`."""

    # ------------------------------------------------------------ internals
    def _finish(self, transfer: Transfer) -> None:
        """Mark ``transfer`` complete and invoke its callback."""
        transfer.completed_at = self.kernel.now
        self._outgoing[transfer.src] -= 1
        self._incoming[transfer.dst] -= 1
        self.completed_transfers += 1
        self.delivered_bytes += transfer.size
        # Notify *before* the completion callback: the callback may submit
        # compute work, and the CPU model's cached per-node powers must
        # already reflect the decremented transfer counts when it does —
        # otherwise the stale window is observable (the verify-mode shadow
        # catches exactly this).
        self._notify((transfer.src, transfer.dst))
        transfer.on_complete(transfer)

    def _notify(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        for listener in self._listeners:
            listener(nodes)


# --------------------------------------------------------------------------
# shared incremental-allocator machinery (star topology)
# --------------------------------------------------------------------------

# ``Link`` is defined in :mod:`repro.netmodel.waterfill` (the solver core)
# and re-exported here, where model code conventionally imports it from.
__all__ = [
    "ActivityListener",
    "CompletionCallback",
    "Link",
    "LinkComponentAllocator",
    "NetworkModel",
    "StarFlowAllocator",
    "Transfer",
]


class StarFlowAllocator(RateAllocator):
    """Per-node flow indices with single-hop dirty sets.

    For sharing laws *without* redistribution, an arriving or departing
    flow can only change the rates of flows sharing one of its two links —
    no transitive cascade.  This base maintains insertion-ordered per-node
    egress/ingress indices (dict-as-set: id-hashed set iteration would vary
    between runs and leak float nondeterminism into subclasses that
    accumulate over the dirty set) and computes that one-hop dirty set.

    Complexity contract: a membership delta costs O(dirty) — the flows
    sharing a link with the changed flows — plus whatever the subclass
    rate law adds; the full path is O(n).  See
    ``docs/allocator_protocol.md``.  Subclasses implement only the rate
    law:

    * :meth:`_full_rates` — assign every task's rate (full recompute);
    * :meth:`_update_rates` — assign rates for the dirty tasks, returning
      the number of per-task rate assignments actually performed.

    Tasks are located in the topology through :meth:`_flow`, which by
    default reads ``task.tag.src`` / ``task.tag.dst``
    (:class:`Transfer` tags).
    """

    def __init__(self, capacity: float, verify: bool = False) -> None:
        super().__init__(verify=verify)
        self.capacity = capacity
        self._out_tasks: dict[int, dict[FluidTask, None]] = {}
        self._in_tasks: dict[int, dict[FluidTask, None]] = {}

    # ---------------------------------------------------------------- hooks
    def _flow(self, task: FluidTask) -> tuple[int, int]:
        """(source, destination) node ids of ``task``."""
        transfer = task.tag
        return transfer.src, transfer.dst

    def _full_rates(self, tasks: Collection[FluidTask]) -> None:
        """Assign a rate to every task (indices are freshly rebuilt)."""
        raise NotImplementedError

    def _update_rates(
        self, dirty: Collection[FluidTask], tasks: Collection[FluidTask]
    ) -> int:
        """Assign rates for the dirty set; return rates actually computed."""
        raise NotImplementedError

    def _forget(self, task: FluidTask) -> None:
        """Drop any extra per-task bookkeeping for a removed task."""

    # -------------------------------------------------------------- helpers
    def _equal_share_rate(self, task: FluidTask) -> float:
        """The paper's sharing law: ``min(B / n_out(src), B / n_in(dst))``."""
        src, dst = self._flow(task)
        out_share = self.capacity / len(self._out_tasks[src])
        in_share = self.capacity / len(self._in_tasks[dst])
        return min(out_share, in_share)

    def _rebuild_index(self, tasks: Collection[FluidTask]) -> None:
        self._out_tasks = {}
        self._in_tasks = {}
        for task in tasks:
            src, dst = self._flow(task)
            self._out_tasks.setdefault(src, {})[task] = None
            self._in_tasks.setdefault(dst, {})[task] = None

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: Collection[FluidTask]) -> None:
        # Rebuild the per-node indices from scratch: the full path must not
        # depend on incremental bookkeeping being in sync.
        self._rebuild_index(tasks)
        self._full_rates(tasks)

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        dirty: dict[FluidTask, None] = {}
        for task in removed:
            src, dst = self._flow(task)
            members = self._out_tasks.get(src)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._out_tasks[src]
            members = self._in_tasks.get(dst)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._in_tasks[dst]
            self._forget(task)
            for neighbour in self._out_tasks.get(src, ()):
                dirty[neighbour] = None
            for neighbour in self._in_tasks.get(dst, ()):
                dirty[neighbour] = None
        for task in added:
            src, dst = self._flow(task)
            self._out_tasks.setdefault(src, {})[task] = None
            self._in_tasks.setdefault(dst, {})[task] = None
        for task in added:
            src, dst = self._flow(task)
            for neighbour in self._out_tasks[src]:
                dirty[neighbour] = None
            for neighbour in self._in_tasks[dst]:
                dirty[neighbour] = None
        # A task removed later in the batch may have entered ``dirty`` as a
        # neighbour of an earlier removal; it holds no rate any more.
        for task in removed:
            dirty.pop(task, None)
        self.stats.rates_computed += self._update_rates(dirty, tasks)


#: Relative tolerance of the warm-start prefix check: an affected link
#: whose fair share undercuts a replayed round's share by more than this
#: invalidates the prefix from that round on.  Mathematically-equal shares
#: (ties) are accepted — the max-min fixed point is unique, so tie-order
#: differences cannot change the resulting rates.
_WARM_RTOL = 1e-9


class _WarmSolution:
    """Cached saturation order of the last whole-pool water-filling solve.

    ``rounds`` mirrors :class:`repro.netmodel.waterfill.MaxMinSolution`
    rounds but references the live :class:`FluidTask` objects instead of
    flow indices, so a later update can replay it against the current
    membership.  ``capacity`` pins the link capacity the solve ran under —
    a capacity edit invalidates the cache.
    """

    __slots__ = ("capacity", "rounds")

    def __init__(
        self,
        capacity: float,
        rounds: list[tuple[Link, float, tuple[FluidTask, ...]]],
    ) -> None:
        self.capacity = capacity
        self.rounds = rounds


def _merge_saturation_orders(
    a: list[tuple[Link, float, tuple[FluidTask, ...]]],
    b: list[tuple[Link, float, tuple[FluidTask, ...]]],
) -> list[tuple[Link, float, tuple[FluidTask, ...]]]:
    """Merge two disjoint-component saturation orders by share.

    Both inputs are nondecreasing in share; for link-disjoint components a
    global water-filling solve processes exactly these rounds interleaved
    by share value, so the stable merge is itself a valid whole-pool
    saturation order (ties may order differently than a fresh solve, which
    is fine — the max-min fixed point is unique).
    """
    merged: list[tuple[Link, float, tuple[FluidTask, ...]]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][1] <= b[j][1]:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return merged


class LinkComponentAllocator(RateAllocator):
    """Link → flows index with BFS over connected components + warm start.

    For sharing laws where bandwidth unused by flows bottlenecked elsewhere
    is redistributed (max-min water-filling and its derivatives), a
    membership change cascades transitively through chained bottlenecks —
    but never past the connected component of the bipartite flow/link graph
    containing the changed flows.  This base maintains the link index,
    finds the affected component by BFS (O(component)), and re-solves only
    that component.

    When the component cascades past ``cascade_threshold`` of the active
    flows — the dense-traffic regime where the whole pool is one giant
    component — the restricted solve would cost as much as a full one.
    Instead of always falling back, the allocator *warm-starts*: it caches
    the previous whole-pool solve's link saturation order and frozen-rate
    assignment, re-freezes the prefix of saturation rounds whose residual
    constraints are untouched by the delta, and re-solves only the suffix
    (see ``docs/performance.md`` for the validity argument and
    ``docs/allocator_protocol.md`` for the counter contract).  A successful
    warm start increments ``stats.warm_starts`` and counts only the suffix
    in ``stats.rates_computed``; when the prefix check fails (or no cache
    is available) the allocator falls back to the full solve and increments
    ``stats.full_fallbacks``.

    Subclasses provide the flow geometry via :meth:`_flow` and the rate
    application via :meth:`_apply_rate` (e.g. the packet model multiplies
    in its per-transfer throughput factor).  The water-filling solve itself
    is :func:`repro.netmodel.waterfill.maxmin_solve`.
    """

    def __init__(
        self,
        capacity: float,
        cascade_threshold: float = 0.5,
        verify: bool = False,
        warm_start: bool = True,
        warm_insert: bool = True,
    ) -> None:
        super().__init__(verify=verify)
        self.capacity = capacity
        self.cascade_threshold = cascade_threshold
        self.warm_start = warm_start
        self.warm_insert = warm_insert
        # Insertion-ordered (dict-as-set): set iteration over id-hashed
        # tasks or str-hashed links would vary between process runs and
        # leak float nondeterminism into the solve order.
        self._link_tasks: dict[Link, dict[FluidTask, None]] = {}
        self._warm: Optional[_WarmSolution] = None

    # ---------------------------------------------------------------- hooks
    def _flow(self, task: FluidTask) -> tuple[int, int]:
        """(source, destination) node ids of ``task``."""
        transfer = task.tag
        return transfer.src, transfer.dst

    def _apply_rate(self, task: FluidTask, rate: float) -> None:
        """Apply a fair ``rate`` to ``task`` (subclass hook).

        The warm-start machinery reasons about *fair* rates; subclasses
        layering a per-task factor on top (e.g. the packet model's seeded
        throughput factor) override this to fold the factor in — which
        stays warm-start-exact because the factor is per-task constant.
        """
        task.rate = rate

    def _solve(self, tasks: Sequence[FluidTask]) -> Optional[MaxMinSolution]:
        """Water-fill ``tasks`` (a component, or everything) at full capacity.

        Returns the :class:`~repro.netmodel.waterfill.MaxMinSolution` so
        whole-pool solves can cache the saturation order for warm starts.
        Overriding this with a non-water-filling law is allowed but should
        return ``None`` (disabling warm starts) unless the override
        produces a valid saturation order.
        """
        solution = maxmin_solve([self._flow(t) for t in tasks], self.capacity)
        for task, rate in zip(tasks, solution.rates):
            self._apply_rate(task, rate)
        return solution

    # -------------------------------------------------------------- helpers
    def _links(self, task: FluidTask) -> tuple[Link, Link]:
        src, dst = self._flow(task)
        return ("out", src), ("in", dst)

    def _register(self, task: FluidTask) -> None:
        for link in self._links(task):
            self._link_tasks.setdefault(link, {})[task] = None

    def _unregister(self, task: FluidTask) -> None:
        for link in self._links(task):
            members = self._link_tasks.get(link)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._link_tasks[link]

    def _component(self, seed_links: Sequence[Link]) -> list[FluidTask]:
        """Flows reachable from ``seed_links`` in the flow/link graph.

        O(component flows + component links) — the BFS never leaves the
        connected component containing the seeds.
        """
        dirty: set[FluidTask] = set()
        ordered: list[FluidTask] = []
        frontier = [link for link in seed_links if link in self._link_tasks]
        seen_links = set(seed_links)
        while frontier:
            link = frontier.pop()
            for task in self._link_tasks.get(link, ()):
                if task in dirty:
                    continue
                dirty.add(task)
                ordered.append(task)
                for other in self._links(task):
                    if other not in seen_links:
                        seen_links.add(other)
                        frontier.append(other)
        return ordered

    def _solve_all(self, tasks: list[FluidTask]) -> None:
        """Whole-pool solve; caches the saturation order for warm starts."""
        solution = self._solve(tasks)
        if solution is not None and self.warm_start:
            self._warm = _WarmSolution(
                self.capacity,
                [
                    (link, share, tuple(tasks[i] for i in indices))
                    for link, share, indices in solution.rounds
                ],
            )
        else:
            self._warm = None

    def _warm_solve(
        self, tasks: Collection[FluidTask], affected: list[Link]
    ) -> bool:
        """Re-solve after a cascade by replaying the cached saturation order.

        The delta (added/removed flows) directly perturbs only the links in
        ``affected``; every other link's residual capacity and unfrozen-flow
        count replay identically until the first round whose bottleneck is
        an affected link or whose share an affected link undercuts.  The
        prefix of rounds before that point re-freezes byte-identically (the
        frozen tasks keep their rates — no reassignment, no horizon-heap
        work), and only the remaining flows are re-solved against the
        prefix's residual capacities.

        Returns ``True`` on success (rates assigned, cache refreshed);
        ``False`` when no usable prefix exists — the caller then performs
        the accounted full fallback.  Cost: O(prefix flows + rounds ·
        |affected|) for the replay plus a suffix-sized bottleneck search.

        When ``warm_insert`` is on, an undercut does not end the prefix:
        the undercutting link *is* the true next bottleneck (its fair
        share is below the round's share, every unaffected link's share
        is at or above it, and it is the minimum among the affected
        links), so a new round freezing its unfrozen flows at that share
        is inserted into the order and the replay continues.  The links
        of the just-frozen flows join the affected set — their residuals
        changed — so later rounds they bottleneck still break the prefix.
        Each insertion is exact and bounded by the link's membership;
        ``stats.warm_inserts`` counts them.  This is what lets a flow
        added to an already-solved component warm-start even when its
        link undercuts the very first cached round.
        """
        if self.warm_insert:
            prefix, frozen, consumed = self._replay_insert(affected)
        else:
            prefix, frozen, consumed = self._replay_plain(affected)
        if not prefix:
            return False
        suffix = [task for task in tasks if task not in frozen]
        self.stats.warm_starts += 1
        self.stats.rates_computed += len(suffix)
        suffix_rounds: list[tuple[Link, float, tuple[FluidTask, ...]]] = []
        if suffix:
            residual = {
                link: max(0.0, self.capacity - used)
                for link, used in consumed.items()
            }
            solution = maxmin_solve(
                [self._flow(t) for t in suffix], self.capacity, residual=residual
            )
            for task, rate in zip(suffix, solution.rates):
                self._apply_rate(task, rate)
            suffix_rounds = [
                (link, share, tuple(suffix[i] for i in indices))
                for link, share, indices in solution.rounds
            ]
        # Prefix shares are <= every suffix share (the suffix starts at the
        # break point's residual state), so the concatenation is itself a
        # valid saturation order for the current membership — reusable by
        # the next warm start.
        self._warm = _WarmSolution(self.capacity, prefix + suffix_rounds)
        return True

    def _replay_plain(
        self, affected: list[Link]
    ) -> tuple[
        list[tuple[Link, float, tuple[FluidTask, ...]]],
        dict[FluidTask, None],
        dict[Link, float],
    ]:
        """The PR 3 replay: the prefix ends at the first affected round.

        Kept verbatim as the ``warm_insert=False`` baseline the dense
        bench compares against.
        """
        warm = self._warm
        affected_set = set(affected)
        # Unfrozen-flow counts on the affected links under the *new*
        # membership (added flows included, removed flows gone).
        counts = {
            link: len(self._link_tasks.get(link, ())) for link in affected
        }
        consumed: dict[Link, float] = {}
        frozen: dict[FluidTask, None] = {}
        prefix: list[tuple[Link, float, tuple[FluidTask, ...]]] = []
        for entry in warm.rounds:
            bottleneck, share, round_tasks = entry
            if bottleneck in affected_set:
                # The delta touched this round's bottleneck link: its share
                # (and, for removals, its frozen-flow set) may be wrong.
                break
            undercut = False
            for link in affected:
                count = counts[link]
                if count > 0 and (
                    self.capacity - consumed.get(link, 0.0)
                    < share * count * (1.0 - _WARM_RTOL)
                ):
                    # An affected link's fair share genuinely dropped below
                    # this round's share — in the true solve it would have
                    # become the bottleneck first.  (Ties are accepted: the
                    # max-min fixed point is unique, so order is irrelevant.)
                    undercut = True
                    break
            if undercut:
                break
            # Accept the round.  Every frozen task is still present: a
            # removed task's links are both in ``affected``, so the round
            # that froze it has an affected bottleneck and broke above.
            for task in round_tasks:
                frozen[task] = None
                for link in self._links(task):
                    consumed[link] = consumed.get(link, 0.0) + share
                    if link in counts:
                        counts[link] -= 1
            prefix.append(entry)
        return prefix, frozen, consumed

    def _replay_insert(
        self, affected: list[Link]
    ) -> tuple[
        list[tuple[Link, float, tuple[FluidTask, ...]]],
        dict[FluidTask, None],
        dict[Link, float],
    ]:
        """Replay with bounded insertion of undercutting affected links.

        Affected links live in a lazy min-heap keyed by their current
        fair share; entries carry the (count, consumed) state they were
        computed from and are discarded when the link has moved on, so
        each cached round costs O(1) amortized instead of O(|affected|).
        An entry below the round's share triggers an insertion; the
        links its frozen flows touch join the affected set (their
        residuals changed) with their own heap entries.  A cached round
        whose bottleneck is affected is skipped when insertions already
        froze its whole membership, and breaks the prefix otherwise (its
        share rose — only a drop is provably the next bottleneck).
        """
        warm = self._warm
        capacity = self.capacity
        affected_set = set(affected)
        counts = {
            link: len(self._link_tasks.get(link, ())) for link in affected
        }
        consumed: dict[Link, float] = {}
        # Frozen-flow tallies per link (all links, not just affected) so a
        # link entering the affected set mid-replay can derive its current
        # unfrozen count without scanning its membership.
        frozen_on: dict[Link, int] = {}
        frozen: dict[FluidTask, None] = {}
        prefix: list[tuple[Link, float, tuple[FluidTask, ...]]] = []
        # Lazy share heap over the affected links: (share, link, count,
        # consumed); an entry is valid iff its state matches the link's.
        heap: list[tuple[float, Link, int, float]] = []

        def push(link: Link) -> None:
            count = counts[link]
            if count > 0:
                used = consumed.get(link, 0.0)
                heapq.heappush(heap, ((capacity - used) / count, link, count, used))

        for link in counts:
            push(link)
        broke = False
        for entry in warm.rounds:
            bottleneck, share, round_tasks = entry
            threshold = share * (1.0 - _WARM_RTOL)
            accept = True
            while True:
                # The minimum-share affected link, if it undercuts this
                # round; lazily discard entries whose link moved on.
                insert_link: Optional[Link] = None
                insert_share = 0.0
                while heap and heap[0][0] < threshold:
                    s_top, link, count, used = heap[0]
                    if counts[link] != count or consumed.get(link, 0.0) != used:
                        heapq.heappop(heap)  # stale
                        continue
                    insert_link, insert_share = link, s_top
                    break
                if insert_link is None:
                    if bottleneck in affected_set:
                        if counts[bottleneck] == 0:
                            # Every member of this round's bottleneck is
                            # already frozen (by inserted rounds) or
                            # removed; the round would freeze nothing —
                            # skip it.
                            accept = False
                            break
                        # The bottleneck's fair share did not strictly
                        # drop (no undercut): for removals it *rose*, so
                        # the cached share and frozen-flow set are stale
                        # and unfrozen unaffected links may saturate
                        # first — end the prefix.
                        broke = True
                        break
                    break
                # Insert the undercutting link as the next round: its fair
                # share is below this round's share, every unaffected
                # unfrozen link sits at or above the round's share, and
                # affected links sit at or above it by heap minimality —
                # so freezing its unfrozen flows at its fair share is
                # exactly what the full solve would do next.
                heapq.heappop(heap)
                members = [
                    task
                    for task in self._link_tasks.get(insert_link, ())
                    if task not in frozen
                ]
                if not members:  # pragma: no cover - count drift guard
                    counts[insert_link] = 0
                    continue
                touched: dict[Link, None] = {}
                for task in members:
                    frozen[task] = None
                    self._apply_rate(task, insert_share)
                    for link in self._links(task):
                        consumed[link] = consumed.get(link, 0.0) + insert_share
                        if link not in counts:
                            # The link's residual changed: it joins the
                            # affected set at its current unfrozen count.
                            counts[link] = len(
                                self._link_tasks.get(link, ())
                            ) - frozen_on.get(link, 0)
                            affected_set.add(link)
                        counts[link] -= 1
                        frozen_on[link] = frozen_on.get(link, 0) + 1
                        touched[link] = None
                for link in touched:
                    push(link)
                prefix.append((insert_link, insert_share, tuple(members)))
                self.stats.warm_inserts += 1
                self.stats.rates_computed += len(members)
                # Re-check this same cached round against the grown
                # affected set before deciding its fate.
            if broke:
                break
            if not accept:
                continue
            # Accept the round.  Every frozen task is still present and
            # unfrozen: a removed task's links are both affected, so the
            # round that froze it broke above; a task frozen by an
            # inserted round crosses only links in the affected set,
            # whose later cached rounds are skipped or break.
            touched_counts: dict[Link, None] = {}
            for task in round_tasks:
                frozen[task] = None
                for link in self._links(task):
                    consumed[link] = consumed.get(link, 0.0) + share
                    if link in counts:
                        counts[link] -= 1
                        touched_counts[link] = None
                    frozen_on[link] = frozen_on.get(link, 0) + 1
            for link in touched_counts:
                push(link)
            prefix.append(entry)
        return prefix, frozen, consumed

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: Collection[FluidTask]) -> None:
        """Rebuild the link index and solve everything from scratch.

        The full path must not depend on incremental bookkeeping being in
        sync (verify mode and fallbacks run it mid-stream); it refreshes
        the warm-start cache as a side effect.  O((n + L) · log L).
        """
        self._link_tasks = {}
        for task in tasks:
            self._register(task)
        self._solve_all(list(tasks))

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        """Dirty-set update: component re-solve, warm start, or fallback.

        Dirty set = the connected component of the changed flows.  Below
        the cascade threshold the component is re-solved at full capacity
        (exact, because components are closed under water-filling) and the
        warm cache — a whole-pool saturation order — is *repaired in
        place*: the dirty component's rounds are replaced by the new
        component solve's rounds, share-merged into the untouched rest
        (``stats.warm_merges``).  At or past the threshold the
        warm-started re-solve is attempted first; only when its prefix
        check fails does the allocator pay the full solve, counted in
        ``stats.full_fallbacks``.
        """
        # Ordered dedup (not a set) for the determinism reason above.
        seed_links: dict[Link, None] = {}
        for task in removed:
            for link in self._links(task):
                seed_links[link] = None
            self._unregister(task)
        for task in added:
            self._register(task)
            for link in self._links(task):
                seed_links[link] = None
        if not tasks:
            # The cached saturation order references flows that are gone;
            # nothing valid can be replayed from it.
            self._warm = None
            return
        dirty = self._component(list(seed_links))
        if len(dirty) > self.cascade_threshold * len(tasks):
            # The cascade reaches most of the pool; the restricted solve
            # would cost as much as the full one.  Replay the previous
            # solve's saturation prefix when one is cached and valid.
            if (
                self.warm_start
                and self._warm is not None
                and self._warm.capacity == self.capacity
                and self._warm_solve(tasks, list(seed_links))
            ):
                return
            self.stats.full_fallbacks += 1
            self.stats.rates_computed += len(tasks)
            self._solve_all(list(tasks))
            return
        # Component-restricted re-solve.  The cached whole-pool saturation
        # order is *not* invalidated wholesale: components are closed under
        # water-filling (disjoint links), so every cached round outside the
        # dirty component replays identically in a fresh whole-pool solve.
        # Dropping only the dirty component's rounds and merging the
        # component's new saturation order back in (by share, keeping the
        # order nondecreasing) leaves a valid whole-pool order for the next
        # warm start — counted in ``stats.warm_merges``.
        self.stats.rates_computed += len(dirty)
        solution = self._solve(dirty)
        if (
            self.warm_start
            and self._warm is not None
            and self._warm.capacity == self.capacity
            and solution is not None
        ):
            # The dirty component's links: every link of a dirty task plus
            # the seeds (covers removed tasks, whose links seeded the BFS).
            comp_links = set(seed_links)
            for task in dirty:
                comp_links.update(self._links(task))
            # A round's frozen flows all use its bottleneck link, so a
            # round references a dirty (or removed) task iff its
            # bottleneck lies in the component's link set.
            kept = [
                entry
                for entry in self._warm.rounds
                if entry[0] not in comp_links
            ]
            new_rounds = [
                (link, share, tuple(dirty[i] for i in indices))
                for link, share, indices in solution.rounds
            ]
            self._warm = _WarmSolution(
                self.capacity, _merge_saturation_orders(kept, new_rounds)
            )
            self.stats.warm_merges += 1
        else:
            self._warm = None
