"""Abstract network-model interface shared by all implementations.

A network model accepts *transfers* (source node, destination node, size)
and invokes a completion callback when the last byte arrives.  It also
exposes per-node concurrent-transfer counts, which the CPU model consumes
("the consumed processing power depends on the number of outgoing and
incoming communications" — paper section 4), and notifies listeners whenever
those counts change.

This module also hosts the two shared incremental-allocator geometries of
the star topology (see the allocator protocol in :mod:`repro.des.fluid`):

* :class:`StarFlowAllocator` — per-node egress/ingress indices with
  *single-hop* dirty sets, for sharing laws without redistribution (the
  paper's equal-share law, the finite-backplane variant);
* :class:`LinkComponentAllocator` — a link → flows index plus BFS over
  connected components of the bipartite flow/link graph, for laws where a
  change cascades transitively through chained bottlenecks (max-min
  water-filling, the packet-level testbed model).

Concrete models subclass one of these and implement only the rate law.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Any, Callable, Collection, Optional, Sequence

from repro.des.fluid import FluidTask, RateAllocator, pool_horizon_stats
from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.params import NetworkParams
from repro.util.validation import check_non_negative

#: Callback type invoked when a transfer completes.
CompletionCallback = Callable[["Transfer"], None]
#: Listener invoked whenever any node's concurrent-transfer counts change;
#: receives the nodes whose counts changed (or ``None`` for "unknown"), so
#: incremental CPU allocators can bound their rate refresh to those nodes.
ActivityListener = Callable[[Optional[tuple[int, ...]]], None]


class Transfer:
    """One data-object transfer moving through a network model."""

    __slots__ = (
        "transfer_id",
        "src",
        "dst",
        "size",
        "on_complete",
        "tag",
        "submitted_at",
        "completed_at",
    )

    _ids = itertools.count()

    def __init__(
        self,
        src: int,
        dst: int,
        size: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> None:
        if src == dst:
            raise SimulationError(
                f"transfer source and destination are the same node ({src}); "
                "local deliveries must bypass the network model"
            )
        self.transfer_id = next(Transfer._ids)
        self.src = int(src)
        self.dst = int(dst)
        self.size = check_non_negative("size", size)
        self.on_complete = on_complete
        self.tag = tag
        self.submitted_at: float = math.nan
        self.completed_at: float = math.nan

    @property
    def elapsed(self) -> float:
        """Wall (simulated) duration of the transfer, NaN until complete."""
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Transfer(#{self.transfer_id} {self.src}->{self.dst}, "
            f"size={self.size!r})"
        )


class NetworkModel(ABC):
    """Common bookkeeping for network models: counts, listeners, stats."""

    def __init__(self, kernel: Kernel, params: NetworkParams) -> None:
        self.kernel = kernel
        self.params = params
        self._outgoing: dict[int, int] = {}
        self._incoming: dict[int, int] = {}
        self._listeners: list[ActivityListener] = []
        #: total transfers completed (simulation-cost metric)
        self.completed_transfers = 0
        #: total bytes delivered
        self.delivered_bytes = 0.0

    # ----------------------------------------------------------------- api
    def submit(
        self,
        src: int,
        dst: int,
        size: float,
        on_complete: CompletionCallback,
        tag: Any = None,
    ) -> Transfer:
        """Admit a transfer; the callback fires when the last byte arrives."""
        transfer = Transfer(src, dst, size, on_complete, tag)
        transfer.submitted_at = self.kernel.now
        self._outgoing[src] = self._outgoing.get(src, 0) + 1
        self._incoming[dst] = self._incoming.get(dst, 0) + 1
        self._start(transfer)
        self._notify((src, dst))
        return transfer

    def concurrent_outgoing(self, node: int) -> int:
        """Number of in-flight transfers leaving ``node``."""
        return self._outgoing.get(node, 0)

    def concurrent_incoming(self, node: int) -> int:
        """Number of in-flight transfers arriving at ``node``."""
        return self._incoming.get(node, 0)

    def active_transfers(self) -> int:
        """Total number of in-flight transfers."""
        return sum(self._outgoing.values())

    def add_listener(self, listener: ActivityListener) -> None:
        """Subscribe to concurrency-count changes (CPU-model coupling)."""
        self._listeners.append(listener)

    @property
    def horizon_stats(self):
        """Completion-horizon counters of the backing pool (None if none)."""
        return pool_horizon_stats(self)

    # ------------------------------------------------------------ subclass
    @abstractmethod
    def _start(self, transfer: Transfer) -> None:
        """Begin moving ``transfer``; must eventually call :meth:`_finish`."""

    # ------------------------------------------------------------ internals
    def _finish(self, transfer: Transfer) -> None:
        """Mark ``transfer`` complete and invoke its callback."""
        transfer.completed_at = self.kernel.now
        self._outgoing[transfer.src] -= 1
        self._incoming[transfer.dst] -= 1
        self.completed_transfers += 1
        self.delivered_bytes += transfer.size
        # Notify *before* the completion callback: the callback may submit
        # compute work, and the CPU model's cached per-node powers must
        # already reflect the decremented transfer counts when it does —
        # otherwise the stale window is observable (the verify-mode shadow
        # catches exactly this).
        self._notify((transfer.src, transfer.dst))
        transfer.on_complete(transfer)

    def _notify(self, nodes: Optional[tuple[int, ...]] = None) -> None:
        for listener in self._listeners:
            listener(nodes)


# --------------------------------------------------------------------------
# shared incremental-allocator machinery (star topology)
# --------------------------------------------------------------------------

#: A link of the star topology: egress ("out") or ingress ("in") of a node.
Link = tuple[str, int]


class StarFlowAllocator(RateAllocator):
    """Per-node flow indices with single-hop dirty sets.

    For sharing laws *without* redistribution, an arriving or departing
    flow can only change the rates of flows sharing one of its two links —
    no transitive cascade.  This base maintains insertion-ordered per-node
    egress/ingress indices (dict-as-set: id-hashed set iteration would vary
    between runs and leak float nondeterminism into subclasses that
    accumulate over the dirty set) and computes that one-hop dirty set;
    subclasses implement only the rate law:

    * :meth:`_full_rates` — assign every task's rate (full recompute);
    * :meth:`_update_rates` — assign rates for the dirty tasks, returning
      the number of per-task rate assignments actually performed.

    Tasks are located in the topology through :meth:`_flow`, which by
    default reads ``task.tag.src`` / ``task.tag.dst``
    (:class:`Transfer` tags).
    """

    def __init__(self, capacity: float, verify: bool = False) -> None:
        super().__init__(verify=verify)
        self.capacity = capacity
        self._out_tasks: dict[int, dict[FluidTask, None]] = {}
        self._in_tasks: dict[int, dict[FluidTask, None]] = {}

    # ---------------------------------------------------------------- hooks
    def _flow(self, task: FluidTask) -> tuple[int, int]:
        """(source, destination) node ids of ``task``."""
        transfer = task.tag
        return transfer.src, transfer.dst

    def _full_rates(self, tasks: Collection[FluidTask]) -> None:
        """Assign a rate to every task (indices are freshly rebuilt)."""
        raise NotImplementedError

    def _update_rates(
        self, dirty: Collection[FluidTask], tasks: Collection[FluidTask]
    ) -> int:
        """Assign rates for the dirty set; return rates actually computed."""
        raise NotImplementedError

    def _forget(self, task: FluidTask) -> None:
        """Drop any extra per-task bookkeeping for a removed task."""

    # -------------------------------------------------------------- helpers
    def _equal_share_rate(self, task: FluidTask) -> float:
        """The paper's sharing law: ``min(B / n_out(src), B / n_in(dst))``."""
        src, dst = self._flow(task)
        out_share = self.capacity / len(self._out_tasks[src])
        in_share = self.capacity / len(self._in_tasks[dst])
        return min(out_share, in_share)

    def _rebuild_index(self, tasks: Collection[FluidTask]) -> None:
        self._out_tasks = {}
        self._in_tasks = {}
        for task in tasks:
            src, dst = self._flow(task)
            self._out_tasks.setdefault(src, {})[task] = None
            self._in_tasks.setdefault(dst, {})[task] = None

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: Collection[FluidTask]) -> None:
        # Rebuild the per-node indices from scratch: the full path must not
        # depend on incremental bookkeeping being in sync.
        self._rebuild_index(tasks)
        self._full_rates(tasks)

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        dirty: dict[FluidTask, None] = {}
        for task in removed:
            src, dst = self._flow(task)
            members = self._out_tasks.get(src)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._out_tasks[src]
            members = self._in_tasks.get(dst)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._in_tasks[dst]
            self._forget(task)
            for neighbour in self._out_tasks.get(src, ()):
                dirty[neighbour] = None
            for neighbour in self._in_tasks.get(dst, ()):
                dirty[neighbour] = None
        for task in added:
            src, dst = self._flow(task)
            self._out_tasks.setdefault(src, {})[task] = None
            self._in_tasks.setdefault(dst, {})[task] = None
        for task in added:
            src, dst = self._flow(task)
            for neighbour in self._out_tasks[src]:
                dirty[neighbour] = None
            for neighbour in self._in_tasks[dst]:
                dirty[neighbour] = None
        # A task removed later in the batch may have entered ``dirty`` as a
        # neighbour of an earlier removal; it holds no rate any more.
        for task in removed:
            dirty.pop(task, None)
        self.stats.rates_computed += self._update_rates(dirty, tasks)


class LinkComponentAllocator(RateAllocator):
    """Link → flows index with BFS over connected components.

    For sharing laws where bandwidth unused by flows bottlenecked elsewhere
    is redistributed (max-min water-filling and its derivatives), a
    membership change cascades transitively through chained bottlenecks —
    but never past the connected component of the bipartite flow/link graph
    containing the changed flows.  This base maintains the link index,
    finds the affected component by BFS, and re-solves only that component
    through the :meth:`_solve` hook, falling back to a full re-solve when
    the component cascades past ``cascade_threshold`` of the active flows
    (at which point the restricted solve would cost as much as the full
    one).  Fallbacks are counted in ``stats.full_fallbacks``.
    """

    def __init__(
        self,
        capacity: float,
        cascade_threshold: float = 0.5,
        verify: bool = False,
    ) -> None:
        super().__init__(verify=verify)
        self.capacity = capacity
        self.cascade_threshold = cascade_threshold
        # Insertion-ordered (dict-as-set): set iteration over id-hashed
        # tasks or str-hashed links would vary between process runs and
        # leak float nondeterminism into the solve order.
        self._link_tasks: dict[Link, dict[FluidTask, None]] = {}

    # ---------------------------------------------------------------- hooks
    def _flow(self, task: FluidTask) -> tuple[int, int]:
        """(source, destination) node ids of ``task``."""
        transfer = task.tag
        return transfer.src, transfer.dst

    def _solve(self, tasks: Sequence[FluidTask]) -> None:
        """Assign rates to ``tasks`` (a component, or everything)."""
        raise NotImplementedError

    # -------------------------------------------------------------- helpers
    def _links(self, task: FluidTask) -> tuple[Link, Link]:
        src, dst = self._flow(task)
        return ("out", src), ("in", dst)

    def _register(self, task: FluidTask) -> None:
        for link in self._links(task):
            self._link_tasks.setdefault(link, {})[task] = None

    def _unregister(self, task: FluidTask) -> None:
        for link in self._links(task):
            members = self._link_tasks.get(link)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._link_tasks[link]

    def _component(self, seed_links: Sequence[Link]) -> list[FluidTask]:
        """Flows reachable from ``seed_links`` in the flow/link graph."""
        dirty: set[FluidTask] = set()
        ordered: list[FluidTask] = []
        frontier = [link for link in seed_links if link in self._link_tasks]
        seen_links = set(seed_links)
        while frontier:
            link = frontier.pop()
            for task in self._link_tasks.get(link, ()):
                if task in dirty:
                    continue
                dirty.add(task)
                ordered.append(task)
                for other in self._links(task):
                    if other not in seen_links:
                        seen_links.add(other)
                        frontier.append(other)
        return ordered

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: Collection[FluidTask]) -> None:
        # Rebuild the link index from scratch: the full path must not
        # depend on incremental bookkeeping being in sync.
        self._link_tasks = {}
        for task in tasks:
            self._register(task)
        self._solve(list(tasks))

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        # Ordered dedup (not a set) for the determinism reason above.
        seed_links: dict[Link, None] = {}
        for task in removed:
            for link in self._links(task):
                seed_links[link] = None
            self._unregister(task)
        for task in added:
            self._register(task)
            for link in self._links(task):
                seed_links[link] = None
        if not tasks:
            return
        dirty = self._component(list(seed_links))
        if len(dirty) > self.cascade_threshold * len(tasks):
            # The cascade reaches most of the pool; the restricted solve
            # would cost as much as the full one, so do the full one.
            self.stats.full_fallbacks += 1
            self.stats.rates_computed += len(tasks)
            self._solve(list(tasks))
            return
        self.stats.rates_computed += len(dirty)
        self._solve(dirty)
