"""Max-min fair variant of the star-topology contention model.

Identical to :class:`~repro.netmodel.star.EqualShareStarNetwork` except that
rates are computed by progressive filling (water-filling): bandwidth left
unused by transfers bottlenecked elsewhere is redistributed among the
remaining transfers on the same link.  This is how TCP flows on a switched
LAN approximately share capacity, so the ground-truth testbed builds on this
model while the paper's simulator uses the simpler equal-share law; the
difference between the two is one genuine source of prediction error, and
``benchmarks/bench_ablation_network.py`` quantifies it.

Rate allocation is *incremental* by default: max-min rates decompose over
connected components of the bipartite flow/link graph, so when a flow
arrives or departs only the flows in its component — those sharing a link
with it directly or transitively through chained bottlenecks — can change
rate.  :class:`IncrementalMaxMinAllocator` maintains a link → flows index,
finds the affected component by BFS, and re-runs water-filling on that
component alone, falling back to a full recomputation when the component
cascades past ``cascade_threshold`` of the active flows (at which point the
restricted solve would cost as much as the full one).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator, RateAllocator
from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.base import NetworkModel, Transfer
from repro.netmodel.params import NetworkParams

#: A link of the star topology: egress ("out") or ingress ("in") of a node.
Link = tuple[str, int]


def _flow_links(src: int, dst: int) -> tuple[Link, Link]:
    return ("out", src), ("in", dst)


def maxmin_rates(
    flows: list[tuple[int, int]], capacity: float
) -> list[float]:
    """Water-filling rate allocation on a star topology.

    Parameters
    ----------
    flows:
        ``(src, dst)`` pairs; each node's egress and ingress are separate
        links of ``capacity`` bytes/s.
    capacity:
        Full-duplex link capacity in bytes/s.

    Returns
    -------
    list of rates, one per flow, in input order.
    """
    n = len(flows)
    rates = [0.0] * n
    if n == 0:
        return rates
    # Link keys: ("out", node) and ("in", node).
    remaining_cap: dict[Link, float] = {}
    link_flows: dict[Link, set[int]] = {}
    for i, (src, dst) in enumerate(flows):
        for link in _flow_links(src, dst):
            remaining_cap.setdefault(link, capacity)
            link_flows.setdefault(link, set()).add(i)
    unfrozen = set(range(n))
    while unfrozen:
        # Find the bottleneck link: smallest fair share among active links.
        bottleneck_share = math.inf
        bottleneck_link = None
        for link, members in link_flows.items():
            active = members & unfrozen
            if not active:
                continue
            share = remaining_cap[link] / len(active)
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        if bottleneck_link is None:  # pragma: no cover - defensive
            break
        # Freeze every unfrozen flow crossing the bottleneck at that share.
        frozen_now = link_flows[bottleneck_link] & unfrozen
        for i in frozen_now:
            rates[i] = bottleneck_share
            unfrozen.discard(i)
            src, dst = flows[i]
            for link in _flow_links(src, dst):
                # Clamp: repeated subtraction can drift a hair below zero
                # under float error, and a negative residual would later
                # surface as a negative fair share — an invalid rate.
                remaining_cap[link] = max(0.0, remaining_cap[link] - bottleneck_share)
    # Invariant: no link carries more than its capacity (modulo rounding).
    for link, members in link_flows.items():
        allocated = sum(rates[i] for i in members)
        if allocated > capacity * (1.0 + 1e-9) + 1e-12:
            raise SimulationError(
                f"max-min allocation over capacity on link {link!r}: "
                f"{allocated!r} > {capacity!r}"
            )
    return rates


class IncrementalMaxMinAllocator(RateAllocator):
    """Dirty-set-bounded water-filling for star-topology fluid tasks.

    Tasks must be tagged with objects exposing ``src``/``dst`` node ids
    (:class:`~repro.netmodel.base.Transfer` does).  On a membership change
    the allocator recomputes rates only for the connected component of the
    flow/link graph containing the changed flows; flows sharing no link —
    even transitively — keep their rates, which is exact because water
    filling decomposes over components.
    """

    def __init__(
        self,
        capacity: float,
        cascade_threshold: float = 0.5,
        verify: bool = False,
    ) -> None:
        super().__init__(verify=verify)
        self.capacity = capacity
        self.cascade_threshold = cascade_threshold
        # Insertion-ordered (dict-as-set): set iteration over id-hashed
        # tasks or str-hashed links would vary between process runs and
        # leak float nondeterminism into the water-fill order.
        self._link_tasks: dict[Link, dict[FluidTask, None]] = {}

    # ---------------------------------------------------------------- helpers
    def _register(self, task: FluidTask) -> None:
        for link in _flow_links(task.tag.src, task.tag.dst):
            self._link_tasks.setdefault(link, {})[task] = None

    def _unregister(self, task: FluidTask) -> None:
        for link in _flow_links(task.tag.src, task.tag.dst):
            members = self._link_tasks.get(link)
            if members is not None:
                members.pop(task, None)
                if not members:
                    del self._link_tasks[link]

    def _component(self, seed_links: Sequence[Link]) -> list[FluidTask]:
        """Flows reachable from ``seed_links`` in the flow/link graph."""
        dirty: set[FluidTask] = set()
        ordered: list[FluidTask] = []
        frontier = [link for link in seed_links if link in self._link_tasks]
        seen_links = set(seed_links)
        while frontier:
            link = frontier.pop()
            for task in self._link_tasks.get(link, ()):
                if task in dirty:
                    continue
                dirty.add(task)
                ordered.append(task)
                for other in _flow_links(task.tag.src, task.tag.dst):
                    if other not in seen_links:
                        seen_links.add(other)
                        frontier.append(other)
        return ordered

    def _solve(self, tasks: Sequence[FluidTask]) -> None:
        rates = maxmin_rates(
            [(t.tag.src, t.tag.dst) for t in tasks], self.capacity
        )
        for task, rate in zip(tasks, rates):
            task.rate = rate

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: list[FluidTask]) -> None:
        # Rebuild the link index from scratch: the full path must not
        # depend on incremental bookkeeping being in sync.
        self._link_tasks = {}
        for task in tasks:
            self._register(task)
        self._solve(tasks)

    def _update(
        self,
        tasks: list[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        # Ordered dedup (not a set) for the determinism reason above.
        seed_links: dict[Link, None] = {}
        for task in removed:
            for link in _flow_links(task.tag.src, task.tag.dst):
                seed_links[link] = None
            self._unregister(task)
        for task in added:
            self._register(task)
            for link in _flow_links(task.tag.src, task.tag.dst):
                seed_links[link] = None
        if not tasks:
            return
        dirty = self._component(list(seed_links))
        if len(dirty) > self.cascade_threshold * len(tasks):
            # The cascade reaches most of the pool; the restricted solve
            # would cost as much as the full one, so do the full one.
            self.stats.rates_computed += len(tasks)
            self._solve(tasks)
            return
        self.stats.rates_computed += len(dirty)
        self._solve(dirty)


class MaxMinStarNetwork(NetworkModel):
    """Star-topology fluid network with max-min fair bandwidth sharing.

    ``incremental=False`` restores the full-recompute-per-event allocator
    (the benchmark baseline); ``verify_incremental=True`` shadows every
    incremental update with a full solve and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        incremental: bool = True,
        verify_incremental: bool = False,
        cascade_threshold: float = 0.5,
    ) -> None:
        super().__init__(kernel, params)
        allocator_cls = (
            IncrementalMaxMinAllocator if incremental else _FullMaxMinAllocator
        )
        self.allocator = allocator_cls(
            params.bandwidth,
            cascade_threshold=cascade_threshold,
            verify=verify_incremental,
        )
        self._pool = FluidPool(kernel, self.allocator, name="maxmin-network")

    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        task = FluidTask(transfer.size, self._drain_done, tag=transfer)
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        self._finish(task.tag)


class _FullMaxMinAllocator(FullRecomputeAllocator, IncrementalMaxMinAllocator):
    """Full water-filling on every membership change (baseline)."""
