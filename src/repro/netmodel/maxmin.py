"""Max-min fair variant of the star-topology contention model.

Identical to :class:`~repro.netmodel.star.EqualShareStarNetwork` except that
rates are computed by progressive filling (water-filling): bandwidth left
unused by transfers bottlenecked elsewhere is redistributed among the
remaining transfers on the same link.  This is how TCP flows on a switched
LAN approximately share capacity, so the ground-truth testbed builds on this
model while the paper's simulator uses the simpler equal-share law; the
difference between the two is one genuine source of prediction error, and
``benchmarks/bench_ablation_network.py`` quantifies it.
"""

from __future__ import annotations

import math

from repro.des.fluid import FluidPool, FluidTask
from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel, Transfer
from repro.netmodel.params import NetworkParams


def maxmin_rates(
    flows: list[tuple[int, int]], capacity: float
) -> list[float]:
    """Water-filling rate allocation on a star topology.

    Parameters
    ----------
    flows:
        ``(src, dst)`` pairs; each node's egress and ingress are separate
        links of ``capacity`` bytes/s.
    capacity:
        Full-duplex link capacity in bytes/s.

    Returns
    -------
    list of rates, one per flow, in input order.
    """
    n = len(flows)
    rates = [0.0] * n
    if n == 0:
        return rates
    # Link keys: ("out", node) and ("in", node).
    remaining_cap: dict[tuple[str, int], float] = {}
    link_flows: dict[tuple[str, int], set[int]] = {}
    for i, (src, dst) in enumerate(flows):
        for link in (("out", src), ("in", dst)):
            remaining_cap.setdefault(link, capacity)
            link_flows.setdefault(link, set()).add(i)
    unfrozen = set(range(n))
    while unfrozen:
        # Find the bottleneck link: smallest fair share among active links.
        bottleneck_share = math.inf
        bottleneck_link = None
        for link, members in link_flows.items():
            active = members & unfrozen
            if not active:
                continue
            share = remaining_cap[link] / len(active)
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        if bottleneck_link is None:  # pragma: no cover - defensive
            break
        # Freeze every unfrozen flow crossing the bottleneck at that share.
        frozen_now = link_flows[bottleneck_link] & unfrozen
        for i in frozen_now:
            rates[i] = bottleneck_share
            unfrozen.discard(i)
            src, dst = flows[i]
            for link in (("out", src), ("in", dst)):
                remaining_cap[link] -= bottleneck_share
    return rates


class MaxMinStarNetwork(NetworkModel):
    """Star-topology fluid network with max-min fair bandwidth sharing."""

    def __init__(self, kernel: Kernel, params: NetworkParams) -> None:
        super().__init__(kernel, params)
        self._pool = FluidPool(kernel, self._allocate, name="maxmin-network")

    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        task = FluidTask(transfer.size, self._drain_done, tag=transfer)
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        self._finish(task.tag)

    def _allocate(self, tasks: list[FluidTask]) -> None:
        flows = [(t.tag.src, t.tag.dst) for t in tasks]
        rates = maxmin_rates(flows, self.params.bandwidth)
        for task, rate in zip(tasks, rates):
            task.rate = rate
