"""Max-min fair variant of the star-topology contention model.

Identical to :class:`~repro.netmodel.star.EqualShareStarNetwork` except that
rates are computed by progressive filling (water-filling): bandwidth left
unused by transfers bottlenecked elsewhere is redistributed among the
remaining transfers on the same link.  This is how TCP flows on a switched
LAN approximately share capacity, so the ground-truth testbed builds on this
model while the paper's simulator uses the simpler equal-share law; the
difference between the two is one genuine source of prediction error, and
``benchmarks/bench_ablation_network.py`` quantifies it.

Rate allocation is *incremental* by default: max-min rates decompose over
connected components of the bipartite flow/link graph, so when a flow
arrives or departs only the flows in its component — those sharing a link
with it directly or transitively through chained bottlenecks — can change
rate.  The component tracking (link index, BFS, cascade fallback) and the
warm-started re-solve that kicks in when the component swallows the pool
live in :class:`~repro.netmodel.base.LinkComponentAllocator`; the
bottleneck-search solve itself lives in
:mod:`repro.netmodel.waterfill`.  See ``docs/performance.md`` for the
design and ``docs/allocator_protocol.md`` for the dirty-set contract.
"""

from __future__ import annotations

from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator
from repro.des.kernel import Kernel
from repro.netmodel.base import LinkComponentAllocator, NetworkModel, Transfer
from repro.netmodel.params import NetworkParams
from repro.netmodel.waterfill import maxmin_solve


def maxmin_rates(
    flows: list[tuple[int, int]], capacity: float
) -> list[float]:
    """Water-filling rate allocation on a star topology.

    A thin wrapper over :func:`repro.netmodel.waterfill.maxmin_solve` that
    returns only the rates — the reference solver the verify-mode shadow
    and the equivalence test-suites compare against.

    Parameters
    ----------
    flows:
        ``(src, dst)`` pairs; each node's egress and ingress are separate
        links of ``capacity`` bytes/s.
    capacity:
        Full-duplex link capacity in bytes/s.

    Returns
    -------
    list of rates, one per flow, in input order.

    Complexity: O((F + L) · log L) — the per-link residual capacities and
    unfrozen-flow counts are kept in a lazy min-heap keyed by fair share,
    so each saturation round costs O(links touched · log L) instead of the
    historical rescan of every flow per round.
    """
    return maxmin_solve(flows, capacity).rates


class IncrementalMaxMinAllocator(LinkComponentAllocator):
    """Dirty-set-bounded water-filling for star-topology fluid tasks.

    Tasks must be tagged with objects exposing ``src``/``dst`` node ids
    (:class:`~repro.netmodel.base.Transfer` does).  On a membership change
    the allocator recomputes rates only for the connected component of the
    flow/link graph containing the changed flows; flows sharing no link —
    even transitively — keep their rates, which is exact because water
    filling decomposes over components.  When the component cascades past
    the threshold, the warm-started re-solve inherited from
    :class:`~repro.netmodel.base.LinkComponentAllocator` replays the
    previous solve's saturation prefix and re-solves only the suffix the
    delta touched.

    The entire behaviour — component BFS, warm start, fallback accounting —
    is the base class's; this subclass only documents the pairing with
    :class:`MaxMinStarNetwork`.
    """


class MaxMinStarNetwork(NetworkModel):
    """Star-topology fluid network with max-min fair bandwidth sharing.

    ``incremental=False`` restores the full-recompute-per-event allocator
    (the benchmark baseline); ``warm_start=False`` keeps the incremental
    component tracking but disables the warm-started cascade re-solve (the
    PR 2 baseline the dense-traffic bench compares against);
    ``verify_incremental=True`` shadows every incremental update with a
    full solve and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        incremental: bool = True,
        verify_incremental: bool = False,
        cascade_threshold: float = 0.5,
        warm_start: bool = True,
        warm_insert: bool = True,
    ) -> None:
        super().__init__(kernel, params)
        allocator_cls = (
            IncrementalMaxMinAllocator if incremental else _FullMaxMinAllocator
        )
        self.allocator = allocator_cls(
            params.bandwidth,
            cascade_threshold=cascade_threshold,
            verify=verify_incremental,
            warm_start=warm_start and incremental,
            warm_insert=warm_insert,
        )
        self._pool = FluidPool(kernel, self.allocator, name="maxmin-network")

    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        task = FluidTask(transfer.size, self._drain_done, tag=transfer)
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        self._finish(task.tag)


class _FullMaxMinAllocator(FullRecomputeAllocator, IncrementalMaxMinAllocator):
    """Full water-filling on every membership change (baseline)."""
