"""Max-min fair variant of the star-topology contention model.

Identical to :class:`~repro.netmodel.star.EqualShareStarNetwork` except that
rates are computed by progressive filling (water-filling): bandwidth left
unused by transfers bottlenecked elsewhere is redistributed among the
remaining transfers on the same link.  This is how TCP flows on a switched
LAN approximately share capacity, so the ground-truth testbed builds on this
model while the paper's simulator uses the simpler equal-share law; the
difference between the two is one genuine source of prediction error, and
``benchmarks/bench_ablation_network.py`` quantifies it.

Rate allocation is *incremental* by default: max-min rates decompose over
connected components of the bipartite flow/link graph, so when a flow
arrives or departs only the flows in its component — those sharing a link
with it directly or transitively through chained bottlenecks — can change
rate.  The component tracking (link index, BFS, cascade fallback) lives in
:class:`~repro.netmodel.base.LinkComponentAllocator`;
:class:`IncrementalMaxMinAllocator` contributes only the water-filling
solve.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator
from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.base import Link, LinkComponentAllocator, NetworkModel, Transfer
from repro.netmodel.params import NetworkParams


def _flow_links(src: int, dst: int) -> tuple[Link, Link]:
    return ("out", src), ("in", dst)


def maxmin_rates(
    flows: list[tuple[int, int]], capacity: float
) -> list[float]:
    """Water-filling rate allocation on a star topology.

    Parameters
    ----------
    flows:
        ``(src, dst)`` pairs; each node's egress and ingress are separate
        links of ``capacity`` bytes/s.
    capacity:
        Full-duplex link capacity in bytes/s.

    Returns
    -------
    list of rates, one per flow, in input order.
    """
    n = len(flows)
    rates = [0.0] * n
    if n == 0:
        return rates
    # Link keys: ("out", node) and ("in", node).
    remaining_cap: dict[Link, float] = {}
    link_flows: dict[Link, set[int]] = {}
    for i, (src, dst) in enumerate(flows):
        for link in _flow_links(src, dst):
            remaining_cap.setdefault(link, capacity)
            link_flows.setdefault(link, set()).add(i)
    unfrozen = set(range(n))
    while unfrozen:
        # Find the bottleneck link: smallest fair share among active links.
        bottleneck_share = math.inf
        bottleneck_link = None
        for link, members in link_flows.items():
            active = members & unfrozen
            if not active:
                continue
            share = remaining_cap[link] / len(active)
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        if bottleneck_link is None:  # pragma: no cover - defensive
            break
        # Freeze every unfrozen flow crossing the bottleneck at that share.
        frozen_now = link_flows[bottleneck_link] & unfrozen
        for i in frozen_now:
            rates[i] = bottleneck_share
            unfrozen.discard(i)
            src, dst = flows[i]
            for link in _flow_links(src, dst):
                # Clamp: repeated subtraction can drift a hair below zero
                # under float error, and a negative residual would later
                # surface as a negative fair share — an invalid rate.
                remaining_cap[link] = max(0.0, remaining_cap[link] - bottleneck_share)
    # Invariant: no link carries more than its capacity (modulo rounding).
    for link, members in link_flows.items():
        allocated = sum(rates[i] for i in members)
        if allocated > capacity * (1.0 + 1e-9) + 1e-12:
            raise SimulationError(
                f"max-min allocation over capacity on link {link!r}: "
                f"{allocated!r} > {capacity!r}"
            )
    return rates


class IncrementalMaxMinAllocator(LinkComponentAllocator):
    """Dirty-set-bounded water-filling for star-topology fluid tasks.

    Tasks must be tagged with objects exposing ``src``/``dst`` node ids
    (:class:`~repro.netmodel.base.Transfer` does).  On a membership change
    the allocator recomputes rates only for the connected component of the
    flow/link graph containing the changed flows; flows sharing no link —
    even transitively — keep their rates, which is exact because water
    filling decomposes over components.
    """

    def _solve(self, tasks: Sequence[FluidTask]) -> None:
        rates = maxmin_rates(
            [self._flow(t) for t in tasks], self.capacity
        )
        for task, rate in zip(tasks, rates):
            task.rate = rate


class MaxMinStarNetwork(NetworkModel):
    """Star-topology fluid network with max-min fair bandwidth sharing.

    ``incremental=False`` restores the full-recompute-per-event allocator
    (the benchmark baseline); ``verify_incremental=True`` shadows every
    incremental update with a full solve and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        incremental: bool = True,
        verify_incremental: bool = False,
        cascade_threshold: float = 0.5,
    ) -> None:
        super().__init__(kernel, params)
        allocator_cls = (
            IncrementalMaxMinAllocator if incremental else _FullMaxMinAllocator
        )
        self.allocator = allocator_cls(
            params.bandwidth,
            cascade_threshold=cascade_threshold,
            verify=verify_incremental,
        )
        self._pool = FluidPool(kernel, self.allocator, name="maxmin-network")

    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        task = FluidTask(transfer.size, self._drain_done, tag=transfer)
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        self._finish(task.tag)


class _FullMaxMinAllocator(FullRecomputeAllocator, IncrementalMaxMinAllocator):
    """Full water-filling on every membership change (baseline)."""
