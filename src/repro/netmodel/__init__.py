"""Network models.

The paper estimates an uncontended transfer as ``t = l + s/b`` and resolves
contention with a star-topology fluid model in which every concurrent
incoming (resp. outgoing) transfer of a node receives an equal share of the
node's full-duplex link bandwidth; the central crossbar is never a
bottleneck.  This subpackage provides that model
(:class:`~repro.netmodel.star.EqualShareStarNetwork`), the contention-free
analytic baseline (:class:`~repro.netmodel.analytic.AnalyticNetwork`), a
max-min fair variant used for ablations
(:class:`~repro.netmodel.maxmin.MaxMinStarNetwork`), a finite-backplane
switch that relaxes the never-a-bottleneck assumption
(:class:`~repro.netmodel.backplane.BackplaneStarNetwork`), and the
finer-grained noisy model used by the ground-truth testbed
(:class:`~repro.netmodel.packet.PacketNetwork`).
"""

from repro.netmodel.params import NetworkParams
from repro.netmodel.base import (
    LinkComponentAllocator,
    NetworkModel,
    StarFlowAllocator,
    Transfer,
)
from repro.netmodel.waterfill import Link, MaxMinSolution, maxmin_solve
from repro.netmodel.analytic import AnalyticNetwork
from repro.netmodel.backplane import BackplaneStarNetwork
from repro.netmodel.star import EqualShareStarNetwork
from repro.netmodel.maxmin import MaxMinStarNetwork
from repro.netmodel.packet import PacketNetwork, PacketNetworkParams
from repro.netmodel.calibration import CalibrationResult, calibrate

__all__ = [
    "Link",
    "MaxMinSolution",
    "maxmin_solve",
    "NetworkParams",
    "NetworkModel",
    "StarFlowAllocator",
    "LinkComponentAllocator",
    "Transfer",
    "AnalyticNetwork",
    "BackplaneStarNetwork",
    "EqualShareStarNetwork",
    "MaxMinStarNetwork",
    "PacketNetwork",
    "PacketNetworkParams",
    "CalibrationResult",
    "calibrate",
]
