"""Latency/bandwidth characterization of a network model.

The paper states that the latency and bandwidth parameters "must be measured
or estimated separately for each target parallel machine".  This module
implements the classic characterization experiment *against any
NetworkModel implementation*: small-message ping timings estimate ``l`` and
large-message streaming estimates ``b``; a least-squares fit of
``t(s) = l + s/b`` recovers both.  Running it against the testbed's
:class:`~repro.netmodel.packet.PacketNetwork` produces the parameters one
would feed the simulator for that "machine" — exactly the workflow a user of
the paper's system follows on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel
from repro.netmodel.params import NetworkParams

#: Factory building a fresh model on a fresh kernel for each probe.
ModelFactory = Callable[[Kernel], NetworkModel]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a network characterization run."""

    latency: float
    bandwidth: float
    sizes: tuple[int, ...]
    times: tuple[float, ...]
    residual_rms: float

    def as_params(self) -> NetworkParams:
        """Package the fitted values as simulator-ready parameters."""
        return NetworkParams(latency=self.latency, bandwidth=self.bandwidth)


def _measure_once(factory: ModelFactory, size: int) -> float:
    kernel = Kernel()
    model = factory(kernel)
    done: list[float] = []
    model.submit(0, 1, float(size), lambda tr: done.append(kernel.now))
    kernel.run()
    if not done:
        raise RuntimeError("calibration transfer never completed")
    return done[0]


def calibrate(
    factory: ModelFactory,
    sizes: Sequence[int] = (0, 1024, 8 * 1024, 64 * 1024, 512 * 1024, 4 * 1024 * 1024),
    repetitions: int = 3,
) -> CalibrationResult:
    """Fit ``t = l + s/b`` over single-transfer timings of ``sizes``.

    ``repetitions`` timings are averaged per size, which matters for noisy
    models (the testbed network); deterministic models are unaffected.
    """
    sizes = tuple(int(s) for s in sizes)
    if len(sizes) < 2:
        raise ValueError("calibration needs at least two message sizes")
    mean_times = []
    for size in sizes:
        samples = [_measure_once(factory, size) for _ in range(max(1, repetitions))]
        mean_times.append(float(np.mean(samples)))
    xs = np.asarray(sizes, dtype=float)
    ys = np.asarray(mean_times, dtype=float)
    # Least squares for t = l + s * inv_b.
    design = np.column_stack([np.ones_like(xs), xs])
    (intercept, slope), *_ = np.linalg.lstsq(design, ys, rcond=None)
    latency = max(0.0, float(intercept))
    bandwidth = float("inf") if slope <= 0 else 1.0 / float(slope)
    fitted = latency + xs * (0.0 if np.isinf(bandwidth) else 1.0 / bandwidth)
    residual_rms = float(np.sqrt(np.mean((fitted - ys) ** 2)))
    return CalibrationResult(
        latency=latency,
        bandwidth=bandwidth,
        sizes=sizes,
        times=tuple(mean_times),
        residual_rms=residual_rms,
    )
