"""Bottleneck-search water-filling core for star-topology max-min fairness.

This module is the shared solver underneath
:class:`repro.netmodel.base.LinkComponentAllocator` and
:func:`repro.netmodel.maxmin.maxmin_rates`.  It lives in its own module so
the allocator base (``netmodel/base.py``) and the model front-ends
(``netmodel/maxmin.py``, ``netmodel/packet.py``) can both import it without
a cycle.

The classic water-filling loop re-scans every link (and every flow on it)
per saturation round — O(rounds · L · F/L) = O(F · rounds) total.
:func:`maxmin_solve` instead keeps per-link residual capacity and
unfrozen-flow counts in a lazy min-heap keyed by the link's current fair
share, so each saturation round costs O(links touched · log L):

* every link holds one *live* heap entry (identified by a version number);
* freezing a round's flows updates the residual/count of each touched
  link and pushes one fresh entry per touched link (the superseded entry
  is discarded lazily when it surfaces at the top);
* each flow freezes exactly once and touches exactly two links, so the
  whole solve costs O((F + L) · log L).

Besides the rates, the solver returns the *saturation order* — the
sequence of ``(link, share, frozen flows)`` rounds — which is exactly the
state the warm-started re-solver in
:class:`repro.netmodel.base.LinkComponentAllocator` caches and replays
(see ``docs/performance.md``).

Determinism: heap ties break on link registration order (first registered
wins), reproducing the tie-break of the historical scan-based loop, and no
id- or str-hash iteration order reaches any float accumulation — the same
workload produces bit-identical rates under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError

#: A link of the star topology: egress ("out") or ingress ("in") of a node.
Link = tuple[str, int]

#: One saturation round: the bottleneck link, the fair share it froze at,
#: and the indices of the flows frozen in that round (input order).
SaturationRound = tuple[Link, float, tuple[int, ...]]


def flow_links(src: int, dst: int) -> tuple[Link, Link]:
    """The two star-topology links a ``src -> dst`` flow crosses."""
    return ("out", src), ("in", dst)


@dataclass(frozen=True)
class MaxMinSolution:
    """Result of one water-filling solve.

    ``rounds`` lists the bottleneck events in saturation (non-decreasing
    share) order; replaying them on identical residual state reproduces
    ``rates`` exactly, which is what the warm-started re-solver relies on.
    """

    #: per-flow max-min fair rates, in input order
    rates: list[float]
    #: saturation order: ``(link, share, frozen flow indices)`` per round
    rounds: list[SaturationRound]


def maxmin_solve(
    flows: Sequence[tuple[int, int]],
    capacity: float,
    residual: Mapping[Link, float] | None = None,
) -> MaxMinSolution:
    """Max-min fair rates on a star topology by bottleneck search.

    Parameters
    ----------
    flows:
        ``(src, dst)`` pairs; each node's egress and ingress are separate
        links of ``capacity`` bytes/s.
    capacity:
        Full-duplex link capacity in bytes/s.
    residual:
        Optional per-link starting capacities overriding ``capacity`` —
        the warm-started re-solver passes the capacities left over after
        re-freezing a valid saturation prefix.  Links absent from the
        mapping start at ``capacity``.

    Complexity: O((F + L) · log L) for F flows over L distinct links —
    each flow freezes exactly once, each freeze touches two links, and
    each touch costs one heap push (stale entries are skipped lazily via
    per-link version counters).
    """
    n = len(flows)
    rates = [0.0] * n
    rounds: list[SaturationRound] = []
    if n == 0:
        return MaxMinSolution(rates, rounds)
    # Insertion-ordered link registry (dict): `order` doubles as the
    # deterministic heap tie-breaker, matching the first-registered-wins
    # tie-break of the historical scan loop.
    members: dict[Link, dict[int, None]] = {}
    cap: dict[Link, float] = {}
    initial_cap: dict[Link, float] = {}
    order: dict[Link, int] = {}
    for i, (src, dst) in enumerate(flows):
        for link in flow_links(src, dst):
            group = members.get(link)
            if group is None:
                members[link] = {i: None}
                start = capacity if residual is None else residual.get(link, capacity)
                cap[link] = start
                initial_cap[link] = start
                order[link] = len(order)
            else:
                group[i] = None
    version: dict[Link, int] = {}
    heap: list[tuple[float, int, int, Link]] = []
    for link, group in members.items():
        version[link] = 0
        heapq.heappush(heap, (cap[link] / len(group), order[link], 0, link))
    while heap:
        share, _, ver, link = heapq.heappop(heap)
        if version.get(link) != ver:
            continue  # superseded by a fresher entry, or fully frozen
        share = max(0.0, share)
        frozen = tuple(members[link])
        touched: dict[Link, None] = {}
        for i in frozen:
            rates[i] = share
            src, dst = flows[i]
            for other in flow_links(src, dst):
                del members[other][i]
                # Clamp: repeated subtraction can drift a hair below zero
                # under float error, and a negative residual would later
                # surface as a negative fair share — an invalid rate.
                cap[other] = max(0.0, cap[other] - share)
                if other != link:
                    touched[other] = None
        rounds.append((link, share, frozen))
        del members[link]
        del version[link]
        for other in touched:
            group = members.get(other)
            if group is None:
                continue
            if not group:
                del members[other]
                del version[other]
            else:
                version[other] += 1
                heapq.heappush(
                    heap, (cap[other] / len(group), order[other], version[other], other)
                )
    # Invariant: no link carries more than its starting capacity (modulo
    # rounding).  O(F) — one pass over the flow/link incidences.
    allocated: dict[Link, float] = {}
    for i, (src, dst) in enumerate(flows):
        for link in flow_links(src, dst):
            allocated[link] = allocated.get(link, 0.0) + rates[i]
    for link, load in allocated.items():
        limit = initial_cap[link]
        if load > limit * (1.0 + 1e-9) + 1e-12:
            raise SimulationError(
                f"max-min allocation over capacity on link {link!r}: "
                f"{load!r} > {limit!r}"
            )
    return MaxMinSolution(rates, rounds)
