"""Ground-truth network model for the virtual-cluster testbed.

The paper validates its simulator against *measurements on a real cluster*.
We do not have that cluster, so the testbed stands in for it (see DESIGN.md,
substitution table).  To make the comparison meaningful, this model must be
*richer* than the simulator's: it layers, on top of max-min fair sharing,

* **chunking** — messages are cut into MTU-sized chunks, each paying a
  per-chunk processing cost (interrupts, checksums), so the effective
  per-byte cost is slightly super-linear, as on real TCP/IP stacks;
* **ramp-up** — the first ``ramp_bytes`` of every connection drain at a
  reduced rate, a coarse stand-in for TCP slow start;
* **seeded noise** — latency jitter and a per-transfer throughput factor,
  representing cross traffic and OS scheduling of the network stack.

Everything stochastic derives from an explicit seed, so testbed
"measurements" are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator
from repro.des.kernel import Kernel
from repro.netmodel.base import LinkComponentAllocator, NetworkModel, Transfer
from repro.errors import ConfigurationError
from repro.netmodel.params import NetworkParams
from repro.util.rng import SeedSequenceFactory
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PacketNetworkParams:
    """Extra fidelity knobs of the testbed network.

    Parameters
    ----------
    mtu:
        Chunk size in bytes (Ethernet payload).
    per_chunk_cost:
        Extra fixed cost per chunk, expressed in *equivalent bytes* added to
        the transfer's drain work (models per-packet processing).
    ramp_bytes:
        Number of leading bytes drained at ``ramp_factor`` of the fair rate.
    ramp_factor:
        Rate multiplier during ramp-up, in (0, 1].
    latency_jitter:
        Standard deviation of multiplicative latency noise (lognormal-ish,
        implemented as ``1 + sigma * N(0,1)`` clipped to >= 0.2).
    rate_jitter:
        Standard deviation of the per-transfer throughput factor.
    """

    mtu: int = 1460
    per_chunk_cost: float = 18.0
    ramp_bytes: int = 16 * 1024
    ramp_factor: float = 0.55
    latency_jitter: float = 0.08
    rate_jitter: float = 0.03

    def __post_init__(self) -> None:
        check_positive("mtu", self.mtu)
        check_non_negative("per_chunk_cost", self.per_chunk_cost)
        check_non_negative("ramp_bytes", self.ramp_bytes)
        if not 0.0 < self.ramp_factor <= 1.0:
            raise ConfigurationError(
                f"ramp_factor must be in (0, 1], got {self.ramp_factor!r}"
            )
        check_non_negative("latency_jitter", self.latency_jitter)
        check_non_negative("rate_jitter", self.rate_jitter)


class IncrementalPacketAllocator(LinkComponentAllocator):
    """Dirty-set-bounded water-filling with per-transfer throughput jitter.

    Tasks are tagged ``(transfer, throughput_factor)``.  The fair rates are
    exactly the max-min water-filling solution of the flow/link graph —
    which decomposes over connected components — and the seeded throughput
    factor is a per-task multiplier applied afterwards, so both the
    component-restricted re-solve and the warm-started cascade re-solve
    inherited from :class:`~repro.netmodel.base.LinkComponentAllocator`
    stay exact (prefix flows keep ``fair_share * factor`` untouched).
    """

    def _flow(self, task: FluidTask) -> tuple[int, int]:
        transfer = task.tag[0]
        return transfer.src, transfer.dst

    def _apply_rate(self, task: FluidTask, rate: float) -> None:
        task.rate = rate * task.tag[1]


class _FullPacketAllocator(FullRecomputeAllocator, IncrementalPacketAllocator):
    """Full water-filling on every membership change (baseline)."""


class PacketNetwork(NetworkModel):
    """Chunked, noisy, max-min-fair star network (testbed ground truth).

    ``incremental=False`` restores the full-recompute-per-event allocator
    (the benchmark baseline); ``warm_start=False`` keeps the incremental
    component tracking but disables the warm-started cascade re-solve (the
    PR 2 baseline the dense-traffic bench compares against);
    ``verify_incremental=True`` shadows every incremental update with a
    full solve and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        packet_params: PacketNetworkParams | None = None,
        seed: int = 0,
        incremental: bool = True,
        verify_incremental: bool = False,
        cascade_threshold: float = 0.5,
        warm_start: bool = True,
        warm_insert: bool = True,
    ) -> None:
        super().__init__(kernel, params)
        self.packet_params = packet_params or PacketNetworkParams()
        self._rng = SeedSequenceFactory(seed).rng("packet-network")
        allocator_cls = (
            IncrementalPacketAllocator if incremental else _FullPacketAllocator
        )
        self.allocator = allocator_cls(
            params.bandwidth,
            cascade_threshold=cascade_threshold,
            verify=verify_incremental,
            warm_start=warm_start and incremental,
            warm_insert=warm_insert,
        )
        self._pool = FluidPool(kernel, self.allocator, name="packet-network")

    # ------------------------------------------------------------ lifecycle
    def _start(self, transfer: Transfer) -> None:
        pp = self.packet_params
        jitter = 1.0 + pp.latency_jitter * float(self._rng.standard_normal())
        delay = self.params.effective_latency * max(0.2, jitter)
        self.kernel.schedule(delay, self._begin_drain, transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        pp = self.packet_params
        chunks = max(1, -(-int(transfer.size) // pp.mtu)) if transfer.size else 0
        # Chunk processing inflates the work; ramp-up inflates the *leading*
        # work by draining it at a reduced rate, which we fold into extra
        # equivalent bytes so a single fluid task suffices.
        work = transfer.size + chunks * pp.per_chunk_cost
        ramped = min(work, float(pp.ramp_bytes))
        work += ramped * (1.0 / pp.ramp_factor - 1.0)
        throughput = 1.0 + pp.rate_jitter * float(self._rng.standard_normal())
        throughput = min(1.0, max(0.5, throughput))
        task = FluidTask(work, self._drain_done, tag=(transfer, throughput))
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        transfer, _ = task.tag
        self._finish(transfer)
