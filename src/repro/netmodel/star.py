"""The paper's contention model: equal bandwidth sharing on a star topology.

Assumptions, verbatim from section 4 of the paper:

* the network has a star topology — each node owns a full-duplex link to a
  central full-crossbar switch which is never a bottleneck;
* all incoming, respectively outgoing, data transfers of a node receive an
  equal share of the link bandwidth.

A transfer therefore progresses at::

    rate = min(B / n_out(src), B / n_in(dst))

where the counts include every transfer currently draining bytes.  Note this
is *not* max-min fair: when a transfer is limited by its destination's share,
the unused fraction of the source's share is **not** redistributed to the
source's other transfers.  The max-min variant lives in
:mod:`repro.netmodel.maxmin` for ablation benches.

Because there is no redistribution, an arriving or departing transfer can
only change the rates of transfers sharing one of its two links — the dirty
set is a single hop, no transitive cascade.
:class:`IncrementalEqualShareAllocator` exploits exactly that.

Latency is modelled as a fixed pre-drain delay of ``l`` (plus the per-object
software overhead) during which the transfer occupies no bandwidth, after
which ``s`` bytes drain through the fluid pool.
"""

from __future__ import annotations

from typing import Collection

from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator
from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel, StarFlowAllocator, Transfer
from repro.netmodel.params import NetworkParams


class IncrementalEqualShareAllocator(StarFlowAllocator):
    """Equal-share rates updated only for flows touching a changed node.

    The per-node indices and single-hop dirty-set computation live in
    :class:`~repro.netmodel.base.StarFlowAllocator`; this class contributes
    only the paper's rate law ``min(B / n_out(src), B / n_in(dst))``.
    """

    # ------------------------------------------------------------- allocator
    def _full_rates(self, tasks: Collection[FluidTask]) -> None:
        for task in tasks:
            task.rate = self._equal_share_rate(task)

    def _update_rates(
        self, dirty: Collection[FluidTask], tasks: Collection[FluidTask]
    ) -> int:
        for task in dirty:
            task.rate = self._equal_share_rate(task)
        return len(dirty)


class _FullEqualShareAllocator(FullRecomputeAllocator, IncrementalEqualShareAllocator):
    """Full recomputation on every membership change (baseline)."""


class EqualShareStarNetwork(NetworkModel):
    """Fluid star-topology network with per-node equal bandwidth sharing.

    ``incremental=False`` restores full recomputation on every membership
    change; ``verify_incremental=True`` shadows incremental updates with a
    full recompute and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        incremental: bool = True,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, params)
        allocator_cls = (
            IncrementalEqualShareAllocator if incremental else _FullEqualShareAllocator
        )
        self.allocator = allocator_cls(params.bandwidth, verify=verify_incremental)
        self._pool = FluidPool(kernel, self.allocator, name="star-network")
        # Draining-transfer counts per node (latency-phase transfers are
        # tracked by the base class but hold no bandwidth).  Kept here, not
        # derived from the allocator index: the index is pruned at the next
        # allocator update, which runs *after* completion callbacks, while
        # these counts must already exclude the finished transfer inside
        # its own callback.
        self._drain_out: dict[int, int] = {}
        self._drain_in: dict[int, int] = {}

    # ------------------------------------------------------------ lifecycle
    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        self._drain_out[transfer.src] = self._drain_out.get(transfer.src, 0) + 1
        self._drain_in[transfer.dst] = self._drain_in.get(transfer.dst, 0) + 1
        task = FluidTask(transfer.size, self._drain_done, tag=transfer)
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        transfer: Transfer = task.tag
        self._drain_out[transfer.src] -= 1
        self._drain_in[transfer.dst] -= 1
        self._finish(transfer)

    # ------------------------------------------------------------- metrics
    def draining_outgoing(self, node: int) -> int:
        """Transfers currently draining bytes out of ``node``."""
        return self._drain_out.get(node, 0)

    def draining_incoming(self, node: int) -> int:
        """Transfers currently draining bytes into ``node``."""
        return self._drain_in.get(node, 0)
