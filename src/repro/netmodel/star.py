"""The paper's contention model: equal bandwidth sharing on a star topology.

Assumptions, verbatim from section 4 of the paper:

* the network has a star topology — each node owns a full-duplex link to a
  central full-crossbar switch which is never a bottleneck;
* all incoming, respectively outgoing, data transfers of a node receive an
  equal share of the link bandwidth.

A transfer therefore progresses at::

    rate = min(B / n_out(src), B / n_in(dst))

where the counts include every transfer currently draining bytes.  Note this
is *not* max-min fair: when a transfer is limited by its destination's share,
the unused fraction of the source's share is **not** redistributed to the
source's other transfers.  The max-min variant lives in
:mod:`repro.netmodel.maxmin` for ablation benches.

Because there is no redistribution, an arriving or departing transfer can
only change the rates of transfers sharing one of its two links — the dirty
set is a single hop, no transitive cascade.
:class:`IncrementalEqualShareAllocator` exploits exactly that.

Latency is modelled as a fixed pre-drain delay of ``l`` (plus the per-object
software overhead) during which the transfer occupies no bandwidth, after
which ``s`` bytes drain through the fluid pool.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.des.fluid import FluidPool, FluidTask, FullRecomputeAllocator, RateAllocator
from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel, Transfer
from repro.netmodel.params import NetworkParams


class IncrementalEqualShareAllocator(RateAllocator):
    """Equal-share rates updated only for flows touching a changed node.

    Maintains per-node sets of draining tasks; a membership change
    recomputes rates only for tasks whose source shares the changed flow's
    source node or whose destination shares its destination node.
    """

    def __init__(self, capacity: float, verify: bool = False) -> None:
        super().__init__(verify=verify)
        self.capacity = capacity
        self._out_tasks: dict[int, set[FluidTask]] = {}
        self._in_tasks: dict[int, set[FluidTask]] = {}

    # ---------------------------------------------------------------- helpers
    def _rate(self, task: FluidTask) -> float:
        transfer: Transfer = task.tag
        out_share = self.capacity / len(self._out_tasks[transfer.src])
        in_share = self.capacity / len(self._in_tasks[transfer.dst])
        return min(out_share, in_share)

    # ------------------------------------------------------------- allocator
    def _full(self, tasks: list[FluidTask]) -> None:
        # Rebuild the per-node indices from scratch: the full path must not
        # depend on incremental bookkeeping being in sync.
        self._out_tasks = {}
        self._in_tasks = {}
        for task in tasks:
            transfer: Transfer = task.tag
            self._out_tasks.setdefault(transfer.src, set()).add(task)
            self._in_tasks.setdefault(transfer.dst, set()).add(task)
        for task in tasks:
            task.rate = self._rate(task)

    def _update(
        self,
        tasks: list[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        dirty: set[FluidTask] = set()
        for task in removed:
            transfer: Transfer = task.tag
            members = self._out_tasks.get(transfer.src)
            if members is not None:
                members.discard(task)
                if not members:
                    del self._out_tasks[transfer.src]
            members = self._in_tasks.get(transfer.dst)
            if members is not None:
                members.discard(task)
                if not members:
                    del self._in_tasks[transfer.dst]
            dirty.update(self._out_tasks.get(transfer.src, ()))
            dirty.update(self._in_tasks.get(transfer.dst, ()))
        for task in added:
            transfer = task.tag
            self._out_tasks.setdefault(transfer.src, set()).add(task)
            self._in_tasks.setdefault(transfer.dst, set()).add(task)
        for task in added:
            transfer = task.tag
            dirty.update(self._out_tasks[transfer.src])
            dirty.update(self._in_tasks[transfer.dst])
        # A task removed later in the batch may have entered ``dirty`` as a
        # neighbour of an earlier removal; it holds no rate any more.
        dirty.difference_update(removed)
        self.stats.rates_computed += len(dirty)
        for task in dirty:
            task.rate = self._rate(task)


class _FullEqualShareAllocator(FullRecomputeAllocator, IncrementalEqualShareAllocator):
    """Full recomputation on every membership change (baseline)."""


class EqualShareStarNetwork(NetworkModel):
    """Fluid star-topology network with per-node equal bandwidth sharing.

    ``incremental=False`` restores full recomputation on every membership
    change; ``verify_incremental=True`` shadows incremental updates with a
    full recompute and raises on divergence.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: NetworkParams,
        incremental: bool = True,
        verify_incremental: bool = False,
    ) -> None:
        super().__init__(kernel, params)
        allocator_cls = (
            IncrementalEqualShareAllocator if incremental else _FullEqualShareAllocator
        )
        self.allocator = allocator_cls(params.bandwidth, verify=verify_incremental)
        self._pool = FluidPool(kernel, self.allocator, name="star-network")
        # Draining-transfer counts per node (latency-phase transfers are
        # tracked by the base class but hold no bandwidth).  Kept here, not
        # derived from the allocator index: the index is pruned at the next
        # allocator update, which runs *after* completion callbacks, while
        # these counts must already exclude the finished transfer inside
        # its own callback.
        self._drain_out: dict[int, int] = {}
        self._drain_in: dict[int, int] = {}

    # ------------------------------------------------------------ lifecycle
    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        self._drain_out[transfer.src] = self._drain_out.get(transfer.src, 0) + 1
        self._drain_in[transfer.dst] = self._drain_in.get(transfer.dst, 0) + 1
        task = FluidTask(transfer.size, self._drain_done, tag=transfer)
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        transfer: Transfer = task.tag
        self._drain_out[transfer.src] -= 1
        self._drain_in[transfer.dst] -= 1
        self._finish(transfer)

    # ------------------------------------------------------------- metrics
    def draining_outgoing(self, node: int) -> int:
        """Transfers currently draining bytes out of ``node``."""
        return self._drain_out.get(node, 0)

    def draining_incoming(self, node: int) -> int:
        """Transfers currently draining bytes into ``node``."""
        return self._drain_in.get(node, 0)
