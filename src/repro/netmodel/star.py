"""The paper's contention model: equal bandwidth sharing on a star topology.

Assumptions, verbatim from section 4 of the paper:

* the network has a star topology — each node owns a full-duplex link to a
  central full-crossbar switch which is never a bottleneck;
* all incoming, respectively outgoing, data transfers of a node receive an
  equal share of the link bandwidth.

A transfer therefore progresses at::

    rate = min(B / n_out(src), B / n_in(dst))

where the counts include every transfer currently draining bytes.  Note this
is *not* max-min fair: when a transfer is limited by its destination's share,
the unused fraction of the source's share is **not** redistributed to the
source's other transfers.  The max-min variant lives in
:mod:`repro.netmodel.maxmin` for ablation benches.

Latency is modelled as a fixed pre-drain delay of ``l`` (plus the per-object
software overhead) during which the transfer occupies no bandwidth, after
which ``s`` bytes drain through the fluid pool.
"""

from __future__ import annotations

from typing import Optional

from repro.des.fluid import FluidPool, FluidTask
from repro.des.kernel import Kernel
from repro.netmodel.base import NetworkModel, Transfer
from repro.netmodel.params import NetworkParams


class EqualShareStarNetwork(NetworkModel):
    """Fluid star-topology network with per-node equal bandwidth sharing."""

    def __init__(self, kernel: Kernel, params: NetworkParams) -> None:
        super().__init__(kernel, params)
        self._pool = FluidPool(kernel, self._allocate, name="star-network")
        # Draining-transfer counts per node (latency-phase transfers are
        # tracked by the base class but hold no bandwidth).
        self._drain_out: dict[int, int] = {}
        self._drain_in: dict[int, int] = {}

    # ------------------------------------------------------------ lifecycle
    def _start(self, transfer: Transfer) -> None:
        delay = self.params.effective_latency
        if delay > 0.0:
            self.kernel.schedule(delay, self._begin_drain, transfer)
        else:
            self._begin_drain(transfer)

    def _begin_drain(self, transfer: Transfer) -> None:
        self._drain_out[transfer.src] = self._drain_out.get(transfer.src, 0) + 1
        self._drain_in[transfer.dst] = self._drain_in.get(transfer.dst, 0) + 1
        task = FluidTask(transfer.size, self._drain_done, tag=transfer)
        self._pool.add(task)

    def _drain_done(self, task: FluidTask) -> None:
        transfer: Transfer = task.tag
        self._drain_out[transfer.src] -= 1
        self._drain_in[transfer.dst] -= 1
        self._finish(transfer)

    # ------------------------------------------------------------ allocator
    def _allocate(self, tasks: list[FluidTask]) -> None:
        bandwidth = self.params.bandwidth
        for task in tasks:
            transfer: Transfer = task.tag
            out_share = bandwidth / self._drain_out[transfer.src]
            in_share = bandwidth / self._drain_in[transfer.dst]
            task.rate = min(out_share, in_share)

    # ------------------------------------------------------------- metrics
    def draining_outgoing(self, node: int) -> int:
        """Transfers currently draining bytes out of ``node``."""
        return self._drain_out.get(node, 0)

    def draining_incoming(self, node: int) -> int:
        """Transfers currently draining bytes into ``node``."""
        return self._drain_in.get(node, 0)
