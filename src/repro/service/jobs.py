"""Job bookkeeping for the scenario service: states, dedup keys, counters.

A *job* is one unique in-flight scenario execution.  Requests map onto
jobs through the **canonical dedup key** (:func:`spec_key`): the SHA-256
of the spec's canonical fully-expanded dict rendered as compact
sorted-key JSON.  Because :meth:`~repro.scenario.spec.ScenarioSpec.to_dict`
is a fixed point of the loader, every surface form of the same scenario —
a partial dict relying on defaults, the TOML file, the JSON file, the
fully-expanded canonical dict — hashes to the same key, and two specs
with any semantic difference hash to different keys.  N identical
requests arriving while a job is queued or running all attach to that one
job and receive the same :class:`~repro.scenario.runner.RunRecord`; the
scenario executes once.

The :class:`JobTable` owns the id → job and key → in-flight-job maps plus
the service counters (`submitted`, `deduplicated`, `rejected`, ...), and
caps the finished-job history so a long-lived server's memory stays
bounded by *active* jobs plus a fixed retention window.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.scenario.spec import ScenarioSpec

# Job lifecycle states (strings, straight onto the wire).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


def canonical_spec(payload: Union[ScenarioSpec, Mapping[str, Any]]) -> ScenarioSpec:
    """Coerce a request payload into a validated :class:`ScenarioSpec`.

    Dict payloads go through the unknown-key-rejecting loader, so a typo'd
    section or field surfaces as a
    :class:`~repro.errors.ConfigurationError` with the loader's own
    message — the text the service returns verbatim in its 400 responses.
    """
    if isinstance(payload, ScenarioSpec):
        return payload
    return ScenarioSpec.from_dict(payload)


def spec_key(payload: Union[ScenarioSpec, Mapping[str, Any]]) -> str:
    """The canonical dedup key of a scenario (32 hex chars).

    Hash of the canonical dict form, so TOML/JSON/dict/partial spellings
    of one scenario collide by construction and semantically different
    specs never do (modulo SHA-256).
    """
    spec = canonical_spec(payload)
    blob = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


@dataclass
class Job:
    """One unique in-flight (or retained finished) scenario execution."""

    id: str
    key: str
    spec: ScenarioSpec
    priority: int = 0
    submitted_at: float = field(default_factory=time.monotonic)
    finished_at: Optional[float] = None
    record: Optional[dict] = None
    error: Optional[str] = None
    error_status: int = 500
    #: Requests attached to this job (1 + dedup shares).
    waiters: int = 1
    #: The pool's execution handle (set by the server once dispatched).
    ticket: Any = None
    #: asyncio.Event the server sets on completion (loop-owned).
    done: Any = None
    _terminal: Optional[str] = None

    @property
    def state(self) -> str:
        """The wire-visible lifecycle state.

        Until the server records a terminal state, the job mirrors its
        pool ticket: queued until a worker picks it up, running from then
        on (a resolved-but-not-yet-processed ticket still reports
        running — the record is not observable before the server says
        done).
        """
        if self._terminal is not None:
            return self._terminal
        if self.ticket is not None:
            ticket_state = self.ticket.state
            if ticket_state == QUEUED:
                return QUEUED
            if ticket_state == CANCELLED:
                return CANCELLED
            return RUNNING
        return QUEUED

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-finish latency in seconds (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def describe(self) -> dict:
        """The JSON payload of ``GET /jobs/<id>``."""
        out: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "scenario": self.spec.name,
            "key": self.key,
            "priority": self.priority,
            "waiters": self.waiters,
        }
        started = getattr(self.ticket, "started_at", None)
        if started is not None:
            out["queued_s"] = started - self.submitted_at
        attempts = getattr(self.ticket, "attempts", 0)
        if attempts:
            # > 1 means the job survived at least one worker crash.
            out["attempts"] = attempts
        failure = getattr(self.ticket, "failure", None)
        if failure is not None:
            out["failure"] = failure
        if self.latency_s is not None:
            out["latency_s"] = self.latency_s
        if self.record is not None:
            out["record"] = self.record
        if self.error is not None:
            out["error"] = self.error
        return out


class JobTable:
    """Id → job and dedup-key → in-flight-job maps, plus service counters.

    Single-threaded by design: the service touches it only from the event
    loop.  Finished jobs are retained (for ``GET /jobs/<id>`` polling) up
    to ``history_limit``, oldest evicted first; an evicted id answers 404.
    """

    def __init__(self, history_limit: int = 256) -> None:
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self.history_limit = history_limit
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._finished: deque[str] = deque()
        self._seq = itertools.count(1)
        self.counters: dict[str, int] = {
            "requests": 0,  # every POST /run that parsed as HTTP
            "submitted": 0,  # unique jobs accepted into the queue
            "deduplicated": 0,  # requests attached to an in-flight job
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,  # backpressure 429s
            "invalid": 0,  # spec validation 400s
        }

    # ------------------------------------------------------------- lookup
    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def inflight(self) -> list[Job]:
        """Jobs currently queued or running (shutdown sweep)."""
        return list(self._inflight.values())

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    # --------------------------------------------------------- submission
    def attach(self, key: str) -> Optional[Job]:
        """Dedup: join an in-flight job for ``key``, or None to create one."""
        job = self._inflight.get(key)
        if job is not None:
            job.waiters += 1
            self.counters["deduplicated"] += 1
        return job

    def create(self, spec: ScenarioSpec, key: str, priority: int = 0) -> Job:
        """Register a new unique job (caller dispatches it to the pool)."""
        job = Job(id=f"j{next(self._seq):06d}", key=key, spec=spec, priority=priority)
        self._jobs[job.id] = job
        self._inflight[key] = job
        self.counters["submitted"] += 1
        return job

    def discard(self, job: Job) -> None:
        """Forget a job the pool refused (backpressure): it never ran."""
        self._jobs.pop(job.id, None)
        self._inflight.pop(job.key, None)
        self.counters["submitted"] -= 1

    # --------------------------------------------------------- completion
    def mark_done(self, job: Job, record: dict) -> None:
        job.record = record
        self._finish(job, DONE, "completed")

    def mark_failed(self, job: Job, error: str, status: int = 500) -> None:
        job.error = error
        job.error_status = status
        self._finish(job, FAILED, "failed")

    def mark_cancelled(self, job: Job) -> None:
        self._finish(job, CANCELLED, "cancelled")

    def _finish(self, job: Job, state: str, counter: str) -> None:
        if job._terminal is not None:  # pragma: no cover - double completion
            return
        job._terminal = state
        job.finished_at = time.monotonic()
        self.counters[counter] += 1
        self._inflight.pop(job.key, None)
        self._finished.append(job.id)
        while len(self._finished) > self.history_limit:
            self._jobs.pop(self._finished.popleft(), None)
