"""The scenario service: ``repro serve`` as a long-lived daemon.

A stdlib-only asyncio HTTP/JSON front end
(:class:`~repro.service.server.ScenarioService`) over a resident worker
pool (:class:`~repro.service.pool.ResidentPool`): clients POST canonical
:class:`~repro.scenario.spec.ScenarioSpec` dicts and receive normalized
:class:`~repro.scenario.runner.RunRecord` JSON, with in-flight
deduplication by canonical spec key, bounded-queue backpressure (429),
priorities, queued-job cancellation, and warm shared caches across
requests.  See ``docs/service.md`` for the HTTP contract.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobTable, canonical_spec, spec_key
from repro.service.pool import (
    PoolClosedError,
    PoolSaturatedError,
    PoolTicket,
    ResidentPool,
)
from repro.service.server import ScenarioService, ServiceThread

__all__ = [
    "Job",
    "JobTable",
    "PoolClosedError",
    "PoolSaturatedError",
    "PoolTicket",
    "ResidentPool",
    "ScenarioService",
    "ServiceClient",
    "ServiceThread",
    "canonical_spec",
    "spec_key",
]
