"""The resident executor: a bounded priority queue over persistent workers.

:class:`ResidentPool` is the execution half of ``repro serve``.  It
generalizes the one-shot pools of
:class:`~repro.analysis.parallel.ParallelSweepRunner` into a long-lived
executor: workers stay warm across requests (keeping their in-process
calibration memos and imported module state), submissions queue in a
bounded priority heap, queued work can be cancelled, and a full queue
raises :class:`PoolSaturatedError` — the signal the HTTP layer turns into
a 429 instead of letting latency grow without bound.

Two worker modes:

* ``mode="thread"`` — resident worker threads call
  :func:`~repro.scenario.runner.run_scenario` in-process.  Scenarios then
  share the parent's calibration memo and any custom
  :class:`~repro.scenario.registry.Registry` directly; throughput is
  GIL-bound but per-request latency is minimal.  This is what the test
  harness uses (deterministic, no forking).
* ``mode="process"`` — a persistent
  :class:`~repro.analysis.parallel.ParallelSweepRunner` pool executes
  specs on worker *processes* via
  :meth:`~repro.analysis.parallel.ParallelSweepRunner.submit_record`.
  True parallelism for CPU-bound simulations; requires the default
  registry (plugins must be importable in the workers).

Running work cannot be interrupted in either mode (there is no safe way
to kill a worker mid-simulation without losing its warm state), so
:meth:`ResidentPool.cancel` succeeds only while a ticket is still queued
— exactly the queued-vs-running contract the service documents.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Optional

from repro.errors import ConfigurationError, ReproError
from repro.scenario.spec import ScenarioSpec
from repro.service.jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING


class PoolSaturatedError(ReproError):
    """The resident pool's bounded queue is full (backpressure)."""


class PoolClosedError(ReproError):
    """A submission arrived after the pool was closed."""


class PoolTicket:
    """Handle for one submitted scenario: a result future plus queued-cancel.

    ``future`` resolves to the record's wire dict
    (``RunRecord.to_dict()``), or raises the engine's exception, or is
    cancelled if the ticket was cancelled while still queued.
    """

    __slots__ = ("spec", "priority", "seq", "future", "state", "started_at")

    def __init__(self, spec: ScenarioSpec, priority: int, seq: int) -> None:
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.future: Future = Future()
        self.state = QUEUED
        self.started_at: Optional[float] = None


class ResidentPool:
    """Persistent workers behind a bounded priority queue.

    Parameters
    ----------
    workers:
        Resident worker count (threads or processes).  None/0: one per CPU.
    queue_limit:
        Maximum *queued* (not yet running) tickets; submissions past it
        raise :class:`PoolSaturatedError`.
    mode:
        ``"thread"`` or ``"process"`` (see module docstring).
    registry:
        Optional plugin registry for thread mode (in-process execution
        can resolve caller-registered plugins).  Process mode rejects a
        custom registry — worker processes resolve the default one.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: int = 64,
        mode: str = "thread",
        registry: Any = None,
    ) -> None:
        import os

        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"unknown pool mode {mode!r}; choose from ['thread', 'process']"
            )
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if registry is not None and mode == "process":
            raise ConfigurationError(
                "a custom registry requires mode='thread'; worker processes "
                "resolve the default registry"
            )
        self.workers = workers or os.cpu_count() or 1
        self.queue_limit = queue_limit
        self.mode = mode
        self.registry = registry
        self._heap: list[tuple[int, int, PoolTicket]] = []
        self._seq = itertools.count(1)
        self._active = 0
        self._executed = 0
        self._lock = threading.Lock()
        self._closed = False
        self._started = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._runner = None  # ParallelSweepRunner, process mode

    # ----------------------------------------------------------- lifetime
    def start(self) -> "ResidentPool":
        """Bring the workers up (idempotent).  Process mode forks here,
        before any traffic, so the fork happens from a quiet process."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise PoolClosedError("the pool has been closed")
            if self.mode == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-serve"
                )
            else:
                from repro.analysis.parallel import ParallelSweepRunner

                self._runner = ParallelSweepRunner(
                    jobs=self.workers, persistent=True
                )
                self._runner._ensure_pool()
            self._started = True
        return self

    def close(self) -> None:
        """Stop accepting work, cancel the queue, release the workers.

        Idempotent.  Queued tickets are cancelled (their futures
        transition to cancelled); running work is abandoned — thread-mode
        tasks finish in the background, process-mode workers are
        terminated.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            stale, self._heap = self._heap, []
        for _, _, ticket in stale:
            ticket.state = CANCELLED
            ticket.future.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._runner is not None:
            self._runner.close(terminate=True)

    def __enter__(self) -> "ResidentPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------- monitoring
    @property
    def queue_depth(self) -> int:
        """Tickets waiting for a worker (cancelled strays excluded)."""
        with self._lock:
            return sum(1 for _, _, t in self._heap if t.state == QUEUED)

    @property
    def active(self) -> int:
        """Tickets currently on a worker."""
        return self._active

    @property
    def executed(self) -> int:
        """Tickets ever dispatched to a worker (each unique job once)."""
        return self._executed

    # --------------------------------------------------------- submission
    def submit(self, spec: ScenarioSpec, priority: int = 0) -> PoolTicket:
        """Enqueue one scenario; higher ``priority`` runs first.

        Raises :class:`PoolSaturatedError` when the bounded queue is full
        and :class:`PoolClosedError` after :meth:`close`.
        """
        self.start()
        with self._lock:
            if self._closed:
                raise PoolClosedError("the pool has been closed")
            queued = sum(1 for _, _, t in self._heap if t.state == QUEUED)
            if queued >= self.queue_limit:
                raise PoolSaturatedError(
                    f"job queue is full ({queued} queued, limit "
                    f"{self.queue_limit}); retry later"
                )
            ticket = PoolTicket(spec, priority, next(self._seq))
            heapq.heappush(self._heap, (-priority, ticket.seq, ticket))
            self._pump_locked()
        return ticket

    def cancel(self, ticket: PoolTicket) -> bool:
        """Cancel a ticket if (and only if) it is still queued."""
        with self._lock:
            if ticket.state != QUEUED:
                return False
            ticket.state = CANCELLED
        ticket.future.cancel()
        return True

    # ----------------------------------------------------------- dispatch
    def _pump_locked(self) -> None:
        """Start queued tickets while worker slots are free (lock held)."""
        while self._active < self.workers and self._heap:
            _, _, ticket = heapq.heappop(self._heap)
            if ticket.state != QUEUED:
                continue  # cancelled while queued; drop the stale entry
            ticket.state = RUNNING
            ticket.started_at = time.monotonic()
            self._active += 1
            self._executed += 1
            self._dispatch(ticket)

    def _dispatch(self, ticket: PoolTicket) -> None:
        # Completion always lands on a pool-owned thread (a worker thread
        # in thread mode, the result-handler thread in process mode) —
        # never synchronously inside submit(), which holds the lock that
        # _finish needs.  A done-callback relay would violate that: a
        # warm-cache job can complete before add_done_callback attaches,
        # and concurrent.futures then runs the callback in the caller.
        if self._executor is not None:
            self._executor.submit(self._run_and_finish, ticket)
        else:
            self._runner.submit_record(
                ticket.spec,
                callback=lambda record, t=ticket: self._finish(t, record, None),
                error_callback=lambda exc, t=ticket: self._finish(t, None, exc),
            )

    def _run_and_finish(self, ticket: PoolTicket) -> None:
        """Thread-mode worker body: execute the spec, then settle the ticket."""
        try:
            record = self._run_spec(ticket.spec)
        except BaseException as exc:
            self._finish(ticket, None, exc)
        else:
            self._finish(ticket, record, None)

    def _run_spec(self, spec: ScenarioSpec) -> dict:
        from repro.scenario import run_scenario

        return run_scenario(spec, self.registry).to_dict()

    def _finish(
        self,
        ticket: PoolTicket,
        record: Optional[dict],
        error: Optional[BaseException],
    ) -> None:
        with self._lock:
            self._active -= 1
            if not self._closed:
                self._pump_locked()
        if error is not None:
            ticket.state = FAILED
            ticket.future.set_exception(error)
        else:
            ticket.state = DONE
            ticket.future.set_result(record)
