"""The resident executor: a bounded priority queue over persistent workers.

:class:`ResidentPool` is the execution half of ``repro serve``.  It
generalizes the one-shot pools of
:class:`~repro.analysis.parallel.ParallelSweepRunner` into a long-lived
executor: workers stay warm across requests (keeping their in-process
calibration memos and imported module state), submissions queue in a
bounded priority heap, queued work can be cancelled, and a full queue
raises :class:`PoolSaturatedError` — the signal the HTTP layer turns into
a 429 instead of letting latency grow without bound.

Two worker modes:

* ``mode="thread"`` — resident worker threads call
  :func:`~repro.scenario.runner.run_scenario` in-process.  Scenarios then
  share the parent's calibration memo and any custom
  :class:`~repro.scenario.registry.Registry` directly; throughput is
  GIL-bound but per-request latency is minimal.  This is what the test
  harness uses (deterministic, no forking).
* ``mode="process"`` — a persistent
  :class:`~repro.analysis.parallel.ParallelSweepRunner` pool executes
  specs on worker *processes* via
  :meth:`~repro.analysis.parallel.ParallelSweepRunner.submit_record`.
  True parallelism for CPU-bound simulations; requires the default
  registry (plugins must be importable in the workers).

Running work cannot be *cancelled* in either mode (there is no safe way
to kill a worker mid-simulation without losing its warm state), so
:meth:`ResidentPool.cancel` succeeds only while a ticket is still queued
— exactly the queued-vs-running contract the service documents.

The pool is additionally crash-safe (``docs/faults.md``): a daemon
monitor thread maps each in-flight ticket to its worker process via the
runner's liveness channel, notices a worker that died mid-job (SIGKILL,
OOM, segfault), and re-dispatches the job under a bounded per-ticket
retry budget with exponential backoff and jitter.  Per-attempt
``deadline`` budgets kill the worker (process mode) or discard the
eventual result (thread mode) and fail the ticket with
:class:`~repro.errors.DeadlineExceededError`.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import signal
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Optional

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ReproError,
    WorkerCrashError,
)
from repro.scenario.spec import ScenarioSpec
from repro.service.jobs import CANCELLED, DONE, FAILED, QUEUED, RUNNING


class PoolSaturatedError(ReproError):
    """The resident pool's bounded queue is full (backpressure)."""


class PoolClosedError(ReproError):
    """A submission arrived after the pool was closed."""


class PoolTicket:
    """Handle for one submitted scenario: a result future plus queued-cancel.

    ``future`` resolves to the record's wire dict
    (``RunRecord.to_dict()``), or raises the engine's exception
    (:class:`~repro.errors.WorkerCrashError` after the retry budget,
    :class:`~repro.errors.DeadlineExceededError` past the deadline), or
    is cancelled if the ticket was cancelled while still queued.
    ``attempts`` counts dispatches to a worker; a completed job with
    ``attempts > 1`` survived at least one worker crash.
    """

    __slots__ = (
        "spec",
        "priority",
        "seq",
        "future",
        "state",
        "started_at",
        "deadline",
        "max_retries",
        "attempts",
        "failure",
        "_pid",
    )

    def __init__(
        self,
        spec: ScenarioSpec,
        priority: int,
        seq: int,
        deadline: Optional[float] = None,
        max_retries: int = 0,
    ) -> None:
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.future: Future = Future()
        self.state = QUEUED
        self.started_at: Optional[float] = None
        #: wall-clock budget in seconds per attempt, None = unbounded
        self.deadline = deadline
        #: extra dispatches allowed after a worker crash
        self.max_retries = max_retries
        self.attempts = 0
        #: short human-readable failure cause ("crash", "deadline"), or None
        self.failure: Optional[str] = None
        self._pid: Optional[int] = None  # worker pid, process mode


class ResidentPool:
    """Persistent workers behind a bounded priority queue.

    Parameters
    ----------
    workers:
        Resident worker count (threads or processes).  None/0: one per CPU.
    queue_limit:
        Maximum *queued* (not yet running) tickets; submissions past it
        raise :class:`PoolSaturatedError`.
    mode:
        ``"thread"`` or ``"process"`` (see module docstring).
    registry:
        Optional plugin registry for thread mode (in-process execution
        can resolve caller-registered plugins).  Process mode rejects a
        custom registry — worker processes resolve the default one.
    max_retries:
        Default extra dispatches after a worker crash (per ticket,
        overridable at :meth:`submit`).  Crash detection — and hence
        retry — applies to process mode; threads do not die under us.
    heartbeat:
        Monitor-thread period in seconds: how often worker liveness,
        deadlines and due retries are checked.
    backoff:
        Base retry delay in seconds; attempt ``n`` retries after
        ``backoff * 2**(n-1)`` plus up to 25% jitter.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: int = 64,
        mode: str = "thread",
        registry: Any = None,
        max_retries: int = 1,
        heartbeat: float = 0.5,
        backoff: float = 0.25,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ConfigurationError(
                f"unknown pool mode {mode!r}; choose from ['thread', 'process']"
            )
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if registry is not None and mode == "process":
            raise ConfigurationError(
                "a custom registry requires mode='thread'; worker processes "
                "resolve the default registry"
            )
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if heartbeat <= 0 or backoff < 0:
            raise ConfigurationError("need heartbeat > 0 and backoff >= 0")
        self.workers = workers or os.cpu_count() or 1
        self.queue_limit = queue_limit
        self.mode = mode
        self.registry = registry
        self.max_retries = max_retries
        self.heartbeat = heartbeat
        self.backoff = backoff
        #: fault counters (monotonic; surfaced by the service's /stats)
        self.retries = 0
        self.crashes = 0
        self.deadline_kills = 0
        self._heap: list[tuple[int, int, PoolTicket]] = []
        self._backoff: list[tuple[float, int, PoolTicket]] = []
        self._running: dict[int, PoolTicket] = {}
        self._seq = itertools.count(1)
        self._active = 0
        self._executed = 0
        self._lock = threading.Lock()
        self._closed = False
        self._started = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._runner = None  # ParallelSweepRunner, process mode
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ----------------------------------------------------------- lifetime
    def start(self) -> "ResidentPool":
        """Bring the workers up (idempotent).  Process mode forks here,
        before any traffic, so the fork happens from a quiet process."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise PoolClosedError("the pool has been closed")
            if self.mode == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-serve"
                )
            else:
                from repro.analysis.parallel import ParallelSweepRunner

                self._runner = ParallelSweepRunner(
                    jobs=self.workers, persistent=True
                )
                self._runner._ensure_pool()
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="repro-serve-monitor",
                daemon=True,
            )
            self._monitor.start()
            self._started = True
        return self

    def close(self) -> None:
        """Stop accepting work, cancel the queue, release the workers.

        Idempotent.  Queued tickets are cancelled (their futures
        transition to cancelled); running work is abandoned — thread-mode
        tasks finish in the background, process-mode workers are
        terminated.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            stale, self._heap = self._heap, []
            waiting, self._backoff = self._backoff, []
        self._stop.set()
        for _, _, ticket in stale:
            ticket.state = CANCELLED
            ticket.future.cancel()
        for _, _, ticket in waiting:
            ticket.state = CANCELLED
            ticket.future.cancel()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._runner is not None:
            self._runner.close(terminate=True)

    def __enter__(self) -> "ResidentPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------- monitoring
    @property
    def queue_depth(self) -> int:
        """Tickets waiting for a worker (cancelled strays excluded)."""
        with self._lock:
            return sum(1 for _, _, t in self._heap if t.state == QUEUED)

    @property
    def active(self) -> int:
        """Tickets currently on a worker."""
        return self._active

    @property
    def executed(self) -> int:
        """Tickets ever dispatched to a worker (each unique job once)."""
        return self._executed

    # --------------------------------------------------------- submission
    def submit(
        self,
        spec: ScenarioSpec,
        priority: int = 0,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> PoolTicket:
        """Enqueue one scenario; higher ``priority`` runs first.

        ``deadline`` bounds each attempt's wall-clock seconds (past it
        the job fails with :class:`~repro.errors.DeadlineExceededError`;
        process-mode workers are killed, thread-mode results discarded).
        ``max_retries`` overrides the pool's crash-retry budget for this
        ticket.  Raises :class:`PoolSaturatedError` when the bounded
        queue is full and :class:`PoolClosedError` after :meth:`close`.
        """
        if deadline is not None and deadline <= 0:
            raise ConfigurationError("deadline must be > 0 seconds")
        if max_retries is not None and max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.start()
        with self._lock:
            if self._closed:
                raise PoolClosedError("the pool has been closed")
            queued = sum(1 for _, _, t in self._heap if t.state == QUEUED)
            if queued >= self.queue_limit:
                raise PoolSaturatedError(
                    f"job queue is full ({queued} queued, limit "
                    f"{self.queue_limit}); retry later"
                )
            ticket = PoolTicket(
                spec,
                priority,
                next(self._seq),
                deadline=deadline,
                max_retries=(
                    self.max_retries if max_retries is None else max_retries
                ),
            )
            heapq.heappush(self._heap, (-priority, ticket.seq, ticket))
            self._pump_locked()
        return ticket

    def cancel(self, ticket: PoolTicket) -> bool:
        """Cancel a ticket if (and only if) it is still queued."""
        with self._lock:
            if ticket.state != QUEUED:
                return False
            ticket.state = CANCELLED
        ticket.future.cancel()
        return True

    # ----------------------------------------------------------- dispatch
    def _pump_locked(self) -> None:
        """Start queued tickets while worker slots are free (lock held)."""
        while self._active < self.workers and self._heap:
            _, _, ticket = heapq.heappop(self._heap)
            if ticket.state != QUEUED:
                continue  # cancelled while queued; drop the stale entry
            ticket.state = RUNNING
            ticket.started_at = time.monotonic()
            ticket.attempts += 1
            self._active += 1
            self._executed += 1
            self._running[ticket.seq] = ticket
            self._dispatch(ticket)

    def _dispatch(self, ticket: PoolTicket) -> None:
        # Completion always lands on a pool-owned thread (a worker thread
        # in thread mode, the result-handler thread in process mode) —
        # never synchronously inside submit(), which holds the lock that
        # _finish needs.  A done-callback relay would violate that: a
        # warm-cache job can complete before add_done_callback attaches,
        # and concurrent.futures then runs the callback in the caller.
        if self._executor is not None:
            self._executor.submit(self._run_and_finish, ticket)
        else:
            self._runner.submit_record(
                ticket.spec,
                callback=lambda record, t=ticket: self._finish(t, record, None),
                error_callback=lambda exc, t=ticket: self._finish(t, None, exc),
                tag=ticket.seq,
            )

    def _run_and_finish(self, ticket: PoolTicket) -> None:
        """Thread-mode worker body: execute the spec, then settle the ticket."""
        try:
            record = self._run_spec(ticket.spec)
        except BaseException as exc:
            self._finish(ticket, None, exc)
        else:
            self._finish(ticket, record, None)

    def _run_spec(self, spec: ScenarioSpec) -> dict:
        from repro.scenario import run_scenario

        return run_scenario(spec, self.registry).to_dict()

    def _finish(
        self,
        ticket: PoolTicket,
        record: Optional[dict],
        error: Optional[BaseException],
    ) -> None:
        with self._lock:
            if self._running.pop(ticket.seq, None) is None:
                # The monitor already reclaimed this slot (crash retry or
                # process-mode deadline kill); a late straggler result
                # must not double-free the worker slot.
                return
            self._active -= 1
            ticket._pid = None
            if not self._closed:
                self._pump_locked()
        if ticket.future.done():
            return  # settled by a thread-mode deadline; result discarded
        if error is not None:
            ticket.state = FAILED
            ticket.failure = type(error).__name__
            ticket.future.set_exception(error)
        else:
            ticket.state = DONE
            ticket.future.set_result(record)

    # ------------------------------------------------------------ liveness
    def _monitor_loop(self) -> None:
        """Heartbeat thread: worker liveness, deadlines, due retries."""
        while not self._stop.wait(self.heartbeat):
            try:
                self._tick(time.monotonic())
            except Exception:  # never let monitoring kill the pool
                pass

    def _tick(self, now: float) -> None:
        """One monitor pass (extracted so tests can drive it directly)."""
        runner = self._runner
        if runner is not None:
            for tag, pid in runner.note_pids():
                with self._lock:
                    ticket = self._running.get(tag)
                if ticket is not None:
                    ticket._pid = pid
        with self._lock:
            tickets = list(self._running.values())
        for ticket in tickets:
            if ticket.future.done():
                continue
            started = ticket.started_at
            if (
                ticket.deadline is not None
                and started is not None
                and now - started >= ticket.deadline
            ):
                self._deadline_exceeded(ticket)
                continue
            pid = ticket._pid
            if (
                runner is not None
                and pid is not None
                and not runner.worker_alive(pid)
            ):
                self._worker_crashed(ticket)
        with self._lock:
            requeued = False
            while self._backoff and self._backoff[0][0] <= now:
                _, _, ticket = heapq.heappop(self._backoff)
                if ticket.state != QUEUED:
                    continue  # cancelled while waiting out the backoff
                heapq.heappush(
                    self._heap, (-ticket.priority, ticket.seq, ticket)
                )
                requeued = True
            if requeued and not self._closed:
                self._pump_locked()

    def _worker_crashed(self, ticket: PoolTicket) -> None:
        """The worker running ``ticket`` died: retry within budget or fail."""
        with self._lock:
            if self._running.pop(ticket.seq, None) is None:
                return  # settled in the meantime
            self.crashes += 1
            self._active -= 1
            ticket._pid = None
            retry = ticket.attempts <= ticket.max_retries and not self._closed
            if retry:
                self.retries += 1
                ticket.state = QUEUED
                delay = self.backoff * (2 ** (ticket.attempts - 1))
                delay *= 1.0 + 0.25 * random.random()
                heapq.heappush(
                    self._backoff,
                    (time.monotonic() + delay, ticket.seq, ticket),
                )
            if not self._closed:
                self._pump_locked()
        if not retry:
            ticket.state = FAILED
            ticket.failure = "crash"
            ticket.future.set_exception(
                WorkerCrashError(
                    f"worker died running the job (attempt "
                    f"{ticket.attempts} of {ticket.max_retries + 1})",
                    attempts=ticket.attempts,
                )
            )

    def _deadline_exceeded(self, ticket: PoolTicket) -> None:
        """``ticket`` blew its per-attempt deadline: kill (process) and fail."""
        pid: Optional[int] = None
        with self._lock:
            if ticket.seq not in self._running or ticket.future.done():
                return
            ticket.failure = "deadline"
            if self._runner is not None:
                # Process mode: the worker is killed, so no result will
                # ever arrive — reclaim the slot here.  Thread mode keeps
                # the slot until the (undying) worker thread returns.
                del self._running[ticket.seq]
                self._active -= 1
                pid = ticket._pid
                ticket._pid = None
                if not self._closed:
                    self._pump_locked()
        if self._runner is not None and pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
                self.deadline_kills += 1
            except (ProcessLookupError, PermissionError):  # already gone
                pass
        ticket.state = FAILED
        ticket.future.set_exception(
            DeadlineExceededError(
                f"job exceeded its {ticket.deadline}s deadline "
                f"(attempt {ticket.attempts})",
                deadline=ticket.deadline,
            )
        )
