"""Blocking HTTP client for the scenario service (``repro serve``).

:class:`ServiceClient` wraps :mod:`http.client` (stdlib only, one
connection per request — matching the server's ``connection: close``
contract) behind the handful of calls a driver needs: submit a scenario
and wait for its record, poll or cancel a job, read health and stats.
Non-2xx responses raise :class:`~repro.errors.ServiceError` carrying the
server's status and error text, so a 400's message is exactly the
configuration loader's complaint and a 429 is distinguishable from a
real failure by ``exc.status``.

Backpressure retries are opt-in: with ``retries > 0`` the client retries
429 responses with exponential backoff, honoring the server's
``retry-after`` hint when it is longer.  Every other status — including
5xx — still raises immediately: a 429 is the one answer the server
defines as "ask again later".
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping, Optional, Union

from repro.errors import ConfigurationError, ServiceError
from repro.scenario.spec import ScenarioSpec


class ServiceClient:
    """Talk to a running scenario service at ``host:port``.

    ``timeout`` is the per-connection socket timeout in seconds (it
    bounds how long one HTTP exchange may take, including a blocking
    ``run`` — pass something generous for long simulations).
    ``retries`` allows that many repeat attempts after a 429 (default 0:
    fail fast); attempt ``n`` waits ``backoff * 2**(n-1)`` seconds or
    the server's ``retry-after``, whichever is longer.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8421,
        timeout: float = 300.0,
        retries: int = 0,
        backoff: float = 0.5,
    ) -> None:
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if backoff < 0:
            raise ConfigurationError("backoff must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # ------------------------------------------------------------ plumbing
    def _one_request(
        self, method: str, path: str, body: Optional[bytes]
    ) -> tuple[int, dict, dict]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"content-type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            status = response.status
            raw = response.read()
            resp_headers = {k.lower(): v for k, v in response.getheaders()}
        finally:
            conn.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {"error": raw.decode("utf-8", "replace")}
        return status, payload, resp_headers

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        expect: tuple = (200,),
    ) -> tuple[int, dict, dict]:
        attempt = 0
        while True:
            status, payload, headers = self._one_request(method, path, body)
            if (
                status == 429
                and status not in expect
                and attempt < self.retries
            ):
                attempt += 1
                delay = self.backoff * (2 ** (attempt - 1))
                hint = headers.get("retry-after")
                if hint:
                    try:
                        delay = max(delay, float(hint))
                    except ValueError:
                        pass
                time.sleep(delay)
                continue
            if status not in expect:
                raise ServiceError(
                    status, payload.get("error", f"unexpected {status}")
                )
            return status, payload, headers

    @staticmethod
    def _spec_body(spec: Union[ScenarioSpec, Mapping[str, Any]]) -> bytes:
        payload = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @staticmethod
    def _run_query(
        priority: int,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
        wait: bool = True,
    ) -> str:
        query = f"?priority={priority}"
        if not wait:
            query += "&wait=0"
        if timeout is not None:
            query += f"&timeout={timeout}"
        if deadline is not None:
            query += f"&deadline={deadline}"
        if max_retries is not None:
            query += f"&max_retries={max_retries}"
        return query

    # ------------------------------------------------------------ endpoints
    def run(
        self,
        spec: Union[ScenarioSpec, Mapping[str, Any]],
        priority: int = 0,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> dict:
        """Submit a scenario and block until its record is ready.

        Returns the record's wire dict (= ``RunRecord.to_dict()``); the
        job id that produced it is available via :meth:`run_with_job`.
        ``timeout`` bounds the *server-side* wait (504 past it);
        ``deadline`` bounds each execution attempt's wall-clock seconds
        and ``max_retries`` the job's crash-retry budget
        (``docs/faults.md``).
        """
        return self.run_with_job(
            spec,
            priority=priority,
            timeout=timeout,
            deadline=deadline,
            max_retries=max_retries,
        )[0]

    def run_with_job(
        self,
        spec: Union[ScenarioSpec, Mapping[str, Any]],
        priority: int = 0,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> tuple[dict, str]:
        """Like :meth:`run` but also returns the job id that served it.

        Two calls returning the same job id were deduplicated into one
        execution by the server.
        """
        query = self._run_query(priority, timeout, deadline, max_retries)
        _, record, headers = self._request(
            "POST", f"/run{query}", self._spec_body(spec)
        )
        return record, headers.get("x-repro-job", "")

    def submit(
        self,
        spec: Union[ScenarioSpec, Mapping[str, Any]],
        priority: int = 0,
        deadline: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> dict:
        """Fire-and-poll submission: returns the job description (202)."""
        query = self._run_query(
            priority, deadline=deadline, max_retries=max_retries, wait=False
        )
        _, payload, _ = self._request(
            "POST", f"/run{query}", self._spec_body(spec), expect=(202,)
        )
        return payload

    def job(self, job_id: str) -> dict:
        """The current description of job ``job_id`` (404 if unknown)."""
        return self._request("GET", f"/jobs/{job_id}")[1]

    def cancel(self, job_id: str) -> dict:
        """Cancel a queued job (409 once running or finished)."""
        return self._request("DELETE", f"/jobs/{job_id}")[1]

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")[1]

    def stats(self) -> dict:
        return self._request("GET", "/stats")[1]
