"""``repro serve``: the asyncio HTTP/JSON front end over the resident pool.

A deliberately small, stdlib-only HTTP/1.1 server
(:class:`ScenarioService`) that turns the declarative scenario API into a
long-lived simulation-as-a-service daemon: clients POST
:class:`~repro.scenario.spec.ScenarioSpec` payloads (the canonical dict
form, exactly what ``--record-json`` consumes on the way out) and receive
normalized :class:`~repro.scenario.runner.RunRecord` JSON.

Endpoints (all JSON; one request per connection, ``connection: close``):

* ``POST /run`` — validate the body through the unknown-key-rejecting
  loader (400 + loader text on failure), dedup against in-flight jobs by
  canonical key, enqueue on the resident pool (429 when the bounded queue
  is full).  Blocks until the record is ready by default;
  ``?wait=0`` returns 202 + the job description for polling, and
  ``?priority=N`` / ``?timeout=S`` tune scheduling and the wait bound.
  ``?deadline=S`` bounds each execution attempt's wall-clock seconds
  (504 + ``DeadlineExceededError`` past it) and ``?max_retries=N``
  overrides the pool's crash-retry budget (``docs/faults.md``).
  Every response carries the job id in an ``x-repro-job`` header.
* ``GET /jobs/<id>`` — job state (+ record once done, error if failed,
  ``attempts``/``failure`` once dispatched — ``attempts > 1`` means the
  job survived a worker crash).
* ``DELETE /jobs/<id>`` — cancel: 200 while queued, 409 once running or
  finished (running simulations cannot be interrupted).
* ``GET /healthz`` — liveness.
* ``GET /stats`` — queue depth, counters (dedup hits, backpressure
  rejections...), both persistent cache families, and p50/p99 job latency
  from a :class:`~repro.util.stats.StreamingQuantile`.

Threading model: all service state (the :class:`~repro.service.jobs.JobTable`,
the latency reservoir) is touched only on the event loop; pool completion
callbacks marshal in via ``call_soon_threadsafe``.  A client disconnect
mid-request never kills the job (other deduplicated waiters may share it)
and never kills the server — write failures are swallowed per connection.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Optional
from urllib.parse import parse_qs

from repro.analysis import benchcache, calibcache
from repro.errors import ConfigurationError, DeadlineExceededError, ReproError
from repro.scenario.runner import calibration_key
from repro.service import jobs as jobstates
from repro.service.jobs import Job, JobTable, canonical_spec, spec_key
from repro.service.pool import PoolSaturatedError, ResidentPool
from repro.util.stats import StreamingQuantile

#: Request guards: a scenario spec is small; anything bigger is abuse.
MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """Internal: an error response (status + message [+ headers])."""

    def __init__(
        self, status: int, message: str, headers: Optional[dict] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class _Disconnect(Exception):
    """Internal: the client went away; close quietly."""


class ScenarioService:
    """The scenario service: HTTP front end + job table + resident pool.

    Construct, then ``await start(host, port)`` inside a running event
    loop (``port=0`` binds an ephemeral port, exposed as ``.port``).
    ``serve_forever()`` blocks until cancelled; ``close()`` is idempotent
    and releases the listener, the waiters, and the pool workers.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: int = 64,
        mode: str = "thread",
        registry: Any = None,
        history_limit: int = 256,
        latency_capacity: int = 512,
        max_retries: int = 1,
    ) -> None:
        self.pool = ResidentPool(
            workers=workers,
            queue_limit=queue_limit,
            mode=mode,
            registry=registry,
            max_retries=max_retries,
        )
        self.registry = registry
        self.jobs = JobTable(history_limit=history_limit)
        self.latency = StreamingQuantile(latency_capacity)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at = time.monotonic()
        self._warm_calibrations: set = set()
        self.cache_hits = 0

    # ----------------------------------------------------------- lifetime
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "ScenarioService":
        """Bring up the pool and bind the listener (ephemeral at 0)."""
        self._loop = asyncio.get_running_loop()
        self.pool.start()
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        self.host = host
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def close(self) -> None:
        """Idempotent shutdown: listener, pool, then release any waiters."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.pool.close()
        for job in self.jobs.inflight():
            # Queued jobs were cancelled by the pool; running ones are
            # abandoned — either way the waiters must not hang.
            self.jobs.mark_cancelled(job)
            if job.done is not None:
                job.done.set()

    # ------------------------------------------------------ HTTP plumbing
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload, headers = 500, {"error": "internal error"}, {}
        try:
            method, path, query, body = await self._read_request(reader)
            status, payload, headers = await self._dispatch(method, path, query, body)
        except _HttpError as exc:
            status, payload, headers = exc.status, {"error": exc.message}, exc.headers
        except (_Disconnect, ConnectionError, asyncio.IncompleteReadError):
            self._close_writer(writer)
            return
        except asyncio.CancelledError:
            self._close_writer(writer)
            raise
        except Exception as exc:  # a handler bug must not kill the daemon
            status, payload, headers = 500, {"error": f"internal error: {exc!r}"}, {}
        try:
            body_bytes = json.dumps(payload, sort_keys=True).encode("utf-8")
            head_lines = [
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "content-type: application/json",
                f"content-length: {len(body_bytes)}",
                "connection: close",
            ]
            head_lines += [f"{k}: {v}" for k, v in headers.items()]
            writer.write(("\r\n".join(head_lines) + "\r\n\r\n").encode("utf-8"))
            writer.write(body_bytes)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass  # client went away while we were answering; job lives on
        finally:
            self._close_writer(writer)

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # pragma: no cover - already-broken transport
            pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            raise _Disconnect
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise _HttpError(400, "malformed HTTP request line")
        method = parts[0].upper()
        path, _, raw_query = parts[1].partition("?")
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many request headers")
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "invalid content-length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length > 0 else b""
        query = {k: v[-1] for k, v in parse_qs(raw_query).items()}
        return method, path, query, body

    # ------------------------------------------------------------ routing
    async def _dispatch(self, method: str, path: str, query: dict, body: bytes):
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz supports GET only")
            return 200, {"status": "ok", "uptime_s": self._uptime()}, {}
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "stats supports GET only")
            return 200, self._stats(), {}
        if path == "/run":
            if method != "POST":
                raise _HttpError(405, "run supports POST only")
            return await self._handle_run(query, body)
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            if method == "GET":
                return 200, self._require_job(job_id).describe(), {}
            if method == "DELETE":
                return self._handle_cancel(job_id)
            raise _HttpError(405, "jobs supports GET and DELETE only")
        raise _HttpError(404, f"unknown path {path!r}")

    def _require_job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return job

    # ---------------------------------------------------------- POST /run
    async def _handle_run(self, query: dict, body: bytes):
        self.jobs.counters["requests"] += 1
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            self.jobs.counters["invalid"] += 1
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        try:
            priority = int(query.get("priority", "0"))
            timeout = float(query["timeout"]) if "timeout" in query else None
            deadline = (
                float(query["deadline"]) if "deadline" in query else None
            )
            max_retries = (
                int(query["max_retries"]) if "max_retries" in query else None
            )
        except ValueError as exc:
            raise _HttpError(400, f"bad query parameter: {exc}") from None
        if deadline is not None and deadline <= 0:
            raise _HttpError(400, "deadline must be > 0 seconds")
        if max_retries is not None and max_retries < 0:
            raise _HttpError(400, "max_retries must be >= 0")
        wait = query.get("wait", "1").lower() not in ("0", "false", "no")
        try:
            spec = canonical_spec(payload)
        except ConfigurationError as exc:
            # The loader's own unknown-key/invalid-value message, verbatim.
            self.jobs.counters["invalid"] += 1
            raise _HttpError(400, str(exc)) from None
        key = spec_key(spec)
        self._note_calibration(spec)

        job = self.jobs.attach(key)
        if job is None:
            job = self.jobs.create(spec, key, priority)
            job.done = asyncio.Event()
            try:
                # Deduplicated followers share the first request's
                # deadline/retry budget along with its result.
                job.ticket = self.pool.submit(
                    spec, priority, deadline=deadline, max_retries=max_retries
                )
            except PoolSaturatedError as exc:
                self.jobs.discard(job)
                self.jobs.counters["rejected"] += 1
                raise _HttpError(429, str(exc), {"retry-after": "1"}) from None
            job.ticket.future.add_done_callback(
                lambda fut, job=job: self._loop.call_soon_threadsafe(
                    self._job_finished, job, fut
                )
            )

        headers = {"x-repro-job": job.id}
        if not wait:
            return 202, job.describe(), headers
        try:
            await asyncio.wait_for(job.done.wait(), timeout)
        except asyncio.TimeoutError:
            raise _HttpError(
                504, f"job {job.id} still {job.state} after {timeout}s", headers
            ) from None
        if job.state == jobstates.DONE:
            return 200, job.record, headers
        if job.state == jobstates.CANCELLED:
            raise _HttpError(409, f"job {job.id} was cancelled", headers)
        raise _HttpError(job.error_status, job.error or "job failed", headers)

    def _job_finished(self, job: Job, fut) -> None:
        """Pool completion, marshalled onto the loop thread."""
        if job.state in jobstates.TERMINAL_STATES:
            return  # e.g. cancelled via DELETE before the callback landed
        if fut.cancelled():
            self.jobs.mark_cancelled(job)
        else:
            exc = fut.exception()
            if exc is None:
                self.jobs.mark_done(job, fut.result())
            else:
                if isinstance(exc, ConfigurationError):
                    status = 400
                elif isinstance(exc, DeadlineExceededError):
                    status = 504
                else:
                    status = 500
                self.jobs.mark_failed(job, str(exc), status)
            self.latency.add(job.latency_s)
        job.done.set()

    # ------------------------------------------------- DELETE /jobs/<id>
    def _handle_cancel(self, job_id: str):
        job = self._require_job(job_id)
        state = job.state
        if state in jobstates.TERMINAL_STATES:
            raise _HttpError(409, f"job {job.id} already {state}")
        if not self.pool.cancel(job.ticket):
            raise _HttpError(
                409,
                f"job {job.id} is running; running jobs cannot be interrupted",
            )
        self.jobs.mark_cancelled(job)
        job.done.set()
        return 200, job.describe(), {"x-repro-job": job.id}

    # ---------------------------------------------------------- GET /stats
    def _uptime(self) -> float:
        return time.monotonic() - self._started_at

    def _note_calibration(self, spec) -> None:
        """Count requests whose calibrated platform is already warm."""
        try:
            key = calibration_key(spec, self.registry)
        except ReproError:
            return  # unknown app etc. — the run itself will report it
        if key is None:
            return
        if key in self._warm_calibrations:
            self.cache_hits += 1
        else:
            self._warm_calibrations.add(key)

    def _stats(self) -> dict:
        count = self.latency.count
        return {
            "server": {
                "uptime_s": self._uptime(),
                "pool_mode": self.pool.mode,
                "workers": self.pool.workers,
                "queue_limit": self.pool.queue_limit,
                "history_limit": self.jobs.history_limit,
            },
            "queue": {
                "depth": self.pool.queue_depth,
                "active": self.pool.active,
                "inflight_jobs": self.jobs.inflight_count,
            },
            "counters": {**self.jobs.counters, "executed": self.pool.executed},
            "faults": {
                "crashes": self.pool.crashes,
                "retries": self.pool.retries,
                "deadline_kills": self.pool.deadline_kills,
            },
            "cache": {
                "calibration_entries": len(calibcache.entries()),
                "kernelbench_entries": len(benchcache.entries()),
                "calibration_warm_hits": self.cache_hits,
            },
            "latency": {
                "count": count,
                "p50_s": self.latency.quantile(50.0) if count else None,
                "p99_s": self.latency.quantile(99.0) if count else None,
            },
        }


class ServiceThread:
    """A :class:`ScenarioService` on its own event-loop thread.

    The reusable in-process harness the test fixtures and the load bench
    build on: ``start()`` binds an ephemeral port and returns once the
    service accepts connections; ``close()`` (idempotent) shuts the
    service, stops the loop and joins the thread.  Constructor kwargs are
    forwarded to :class:`ScenarioService`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **service_kwargs) -> None:
        self._host = host
        self._bind_port = port
        self.service = ScenarioService(**service_kwargs)
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None

    def start(self) -> "ServiceThread":
        import threading

        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.service.start(self._host, self._bind_port), self._loop
        ).result(timeout=30)
        self.port = self.service.port
        return self

    def close(self) -> None:
        loop, self._loop = self._loop, None
        if loop is None:
            return
        asyncio.run_coroutine_threadsafe(self.service.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=10)
        loop.close()

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
